//! Command-driven network execution through the bank controller.
//!
//! [`FfExecutor`](crate::FfExecutor) proves numerical fidelity; this
//! module proves *protocol* fidelity: a fully-connected network is
//! compiled into an integer plan (per-layer quantized weights, SA
//! windows, and buffer addresses), programmed into a
//! [`BankController`]'s mats, and then every inference is driven purely
//! by Table I commands — `load` staging inputs from the Buffer subarray
//! into mat latches, mat computation, `store` returning outputs — with
//! row-tile merging on the precision-control adder and integer
//! requantization between layers, exactly the dataflow of paper Fig. 5(a).
//!
//! The runner supports the activation functions PRIME's output units
//! implement exactly in the integer domain (ReLU and identity); sigmoid
//! networks are covered by the analog-calibrated
//! [`FfExecutor`](crate::FfExecutor) path.

use serde::{Deserialize, Serialize};

use prime_circuits::{ComposingScheme, PrecisionController};
use prime_device::NoiseModel;
use prime_mem::{BufAddr, Command, FfAddr, MatAddr, MatFunction};
use prime_nn::{Activation, Layer, Network};

use crate::controller::{BankController, BankScratch};
use crate::error::PrimeError;

/// The analog-evaluation knob threaded through the merge kernel: `None`
/// evaluates tiles digitally, `Some` routes every tile through the noisy
/// voltage/conductance domain with the given read-noise model and RNG.
type Analog<'a, R> = Option<(&'a NoiseModel, &'a mut R)>;

/// Concrete digital instantiation for call sites without an RNG.
type NoAnalog<'a> = Analog<'a, rand::rngs::SmallRng>;

/// Reusable buffers for [`CommandRunner::infer_into`].
///
/// Bundles everything one inference needs — staged layer codes, the
/// per-output precision-control registers of the tile merge, and the
/// bank-level compute scratch. Buffers only grow, so after the first
/// inference a reused scratch makes the whole forward pass perform zero
/// steady-state heap allocation. One scratch belongs with one bank
/// (thread-per-bank execution keeps them paired).
#[derive(Debug, Default, Clone)]
pub struct InferScratch {
    /// Current layer's input codes.
    codes: Vec<i64>,
    /// Next layer's codes (swapped with `codes` between layers).
    next_codes: Vec<i64>,
    /// Per-output precision-control registers of the merge adder.
    merge_acc: Vec<PrecisionController>,
    /// Full-precision merged sums of the current layer.
    merged: Vec<i64>,
    /// One tile's post-output-unit results.
    tile_out: Vec<i64>,
    /// Controller-side compute buffers.
    bank: BankScratch,
}

impl InferScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        InferScratch::default()
    }
}

/// One mat-sized tile of a planned layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct PlannedTile {
    mat: MatAddr,
    /// Row span [start, end) within the layer's input vector.
    rows: (usize, usize),
    /// Column span [start, end) within the layer's output vector.
    cols: (usize, usize),
    /// The tile's SA shift (read back after programming).
    shift: u8,
}

/// One planned fully-connected layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct PlannedLayer {
    tiles: Vec<PlannedTile>,
    inputs: usize,
    outputs: usize,
    /// Bias in merged full-precision units.
    bias_units: Vec<i64>,
    /// Right shift taking merged full-precision sums to 6-bit codes for
    /// the next layer (calibrated).
    requant_shift: u8,
    relu: bool,
    /// Buffer address where this layer's input codes live.
    in_addr: BufAddr,
    /// Buffer address where this layer's output codes are stored.
    out_addr: BufAddr,
}

/// A compiled, programmed, command-driven network.
///
/// # Examples
///
/// ```no_run
/// use prime_core::{BankController, CommandRunner};
/// use prime_nn::{Activation, FullyConnected, Layer, Network};
///
/// let net = Network::new(vec![
///     Layer::Fc(FullyConnected::new(16, 8, Activation::Relu)),
///     Layer::Fc(FullyConnected::new(8, 4, Activation::Identity)),
/// ])?;
/// let mut controller = BankController::new(2, 64, 4096, 8192);
/// let mut runner = CommandRunner::compile(&net, &mut controller, &[0.5; 16])?;
/// let out = runner.infer(&mut controller, &[0.5; 16])?;
/// assert_eq!(out.len(), 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommandRunner {
    layers: Vec<PlannedLayer>,
    /// Scale of the network-input quantization (codes = value / scale).
    input_scale: f32,
    /// Combined output scale: real value = merged units * this.
    output_scale: f32,
    mats_used: usize,
    /// The composing scheme of the mats the plan was compiled for — the
    /// single source of truth for input/output code bounds.
    scheme: ComposingScheme,
}

impl CommandRunner {
    /// Compiles `net` (fully-connected, ReLU/identity activations only)
    /// onto the controller's FF mats: quantizes weights, programs tiles,
    /// and calibrates every SA window and requantization shift with the
    /// representative `calibration_input`.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::MappingMismatch`] for unsupported layers or
    /// if the controller has too few mats.
    pub fn compile(
        net: &Network,
        controller: &mut BankController,
        calibration_input: &[f32],
    ) -> Result<Self, PrimeError> {
        let mats_per_subarray = controller.mats_per_subarray();
        let total_mats = controller.ff_subarrays() * mats_per_subarray;
        // Code bounds come from the mats' composing scheme (Pin/Po), not
        // hard-coded constants — the quantizer and every downstream clamp
        // share this single source of truth.
        let scheme = if total_mats > 0 {
            controller
                .mat(MatAddr {
                    subarray: 0,
                    mat: 0,
                })
                .scheme()
        } else {
            ComposingScheme::prime_default()
        };
        let in_code_max = f32::from(scheme.input_code_max());
        let mut next_mat = 0usize;
        let mut planned = Vec::new();
        let mut buf_cursor: u64 = 0;

        // Input quantization scale from the calibration vector.
        let in_max = calibration_input
            .iter()
            .fold(0.0f32, |m, &v| m.max(v.abs()))
            .max(1e-6);
        let input_scale = in_max / in_code_max;
        let mut codes: Vec<i64> = calibration_input
            .iter()
            .map(|&v| ((v / input_scale).round().clamp(0.0, in_code_max)) as i64)
            .collect();
        let mut value_scale = input_scale; // real value of one input code unit

        for layer in net.layers() {
            let Layer::Fc(fc) = layer else {
                return Err(PrimeError::MappingMismatch {
                    reason: format!(
                        "command runner supports fully-connected layers; got {}",
                        layer.describe()
                    ),
                });
            };
            let relu = match fc.activation() {
                Activation::Relu => true,
                Activation::Identity => false,
                Activation::Sigmoid => {
                    return Err(PrimeError::MappingMismatch {
                        reason: "command runner covers the integer-exact output units \
                                 (ReLU/identity); use FfExecutor for sigmoid networks"
                            .to_string(),
                    })
                }
            };
            let (inputs, outputs) = (fc.inputs(), fc.outputs());
            // Quantize weights to composed 8-bit codes.
            let w = fc.weights().data();
            let w_max = w.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(1e-6);
            let w_scale = w_max / 255.0;
            // Tile and program.
            let row_spans: Vec<(usize, usize)> = (0..inputs.div_ceil(256))
                .map(|t| (t * 256, ((t + 1) * 256).min(inputs)))
                .collect();
            let col_spans: Vec<(usize, usize)> = (0..outputs.div_ceil(128))
                .map(|t| (t * 128, ((t + 1) * 128).min(outputs)))
                .collect();
            let mut tiles = Vec::new();
            for &(r0, r1) in &row_spans {
                for &(c0, c1) in &col_spans {
                    if next_mat >= total_mats {
                        return Err(PrimeError::MappingMismatch {
                            reason: "network needs more FF mats than the bank provides".to_string(),
                        });
                    }
                    let mat = MatAddr {
                        subarray: next_mat / mats_per_subarray,
                        mat: next_mat % mats_per_subarray,
                    };
                    next_mat += 1;
                    let (tr, tc) = (r1 - r0, c1 - c0);
                    let mut tile_codes = Vec::with_capacity(tr * tc);
                    for r in r0..r1 {
                        for c in c0..c1 {
                            // Weight matrix is [outputs, inputs]; the
                            // crossbar wants [inputs, outputs].
                            let value = w[c * inputs + r];
                            tile_codes
                                .push(((value / w_scale).round().clamp(-255.0, 255.0)) as i32);
                        }
                    }
                    controller.execute(Command::SetFunction {
                        mat,
                        function: MatFunction::Program,
                    })?;
                    controller
                        .mat_mut(mat)
                        .program_composed(&tile_codes, tr, tc)?;
                    controller.execute(Command::SetFunction {
                        mat,
                        function: MatFunction::Compute,
                    })?;
                    // Calibrate the SA window on the calibration codes.
                    let mut max_abs = 1i64;
                    for c in 0..tc {
                        let mut acc = 0i64;
                        for (r, &x) in codes[r0..r1].iter().enumerate() {
                            acc += x * i64::from(tile_codes[r * tc + c]);
                        }
                        max_abs = max_abs.max(acc.abs());
                    }
                    controller.mat_mut(mat).calibrate_output_window(2 * max_abs);
                    let shift = controller.mat(mat).output_shift();
                    tiles.push(PlannedTile {
                        mat,
                        rows: (r0, r1),
                        cols: (c0, c1),
                        shift,
                    });
                }
            }
            // Bias in full-precision units: bias_real / (value_scale * w_scale).
            let unit = value_scale * w_scale;
            let bias_units: Vec<i64> = fc
                .bias()
                .iter()
                .map(|&b| (b / unit).round() as i64)
                .collect();
            // Calibrate the requantization shift from the merged
            // calibration activations.
            let merged = Self::merge_reference(&tiles, controller, &codes, outputs, &bias_units)?;
            let out_max = merged.iter().map(|&v| v.abs()).max().unwrap_or(1).max(1);
            let bits = 64 - out_max.leading_zeros() as i64;
            // Requantize down to the scheme's input precision so the next
            // layer's codes fit its Pin-bit drivers.
            let requant_shift = (bits - i64::from(scheme.input_bits())).max(0) as u8;
            let in_addr = BufAddr(buf_cursor);
            buf_cursor += inputs as u64;
            let out_addr = BufAddr(buf_cursor);
            let plan = PlannedLayer {
                tiles,
                inputs,
                outputs,
                bias_units,
                requant_shift,
                relu,
                in_addr,
                out_addr,
            };
            // Advance the calibration activations through this layer.
            codes = Self::forward_codes(&plan, controller, &codes, &scheme)?;
            value_scale = unit * (plan.requant_shift as f32).exp2();
            planned.push(plan);
        }
        Ok(CommandRunner {
            layers: planned,
            input_scale,
            output_scale: value_scale,
            mats_used: next_mat,
            scheme,
        })
    }

    /// FF mats the plan occupies.
    pub fn mats_used(&self) -> usize {
        self.mats_used
    }

    /// Full-precision merged sums of one layer on given input codes,
    /// via actual mat computation (used for calibration and inference).
    fn merge_reference(
        tiles: &[PlannedTile],
        controller: &mut BankController,
        codes: &[i64],
        outputs: usize,
        bias_units: &[i64],
    ) -> Result<Vec<i64>, PrimeError> {
        let mut acc = Vec::new();
        let mut bank = BankScratch::new();
        let mut tile_out = Vec::new();
        let mut out = Vec::new();
        Self::merge_reference_into(
            tiles,
            controller,
            codes,
            outputs,
            bias_units,
            NoAnalog::None,
            &mut acc,
            &mut bank,
            &mut tile_out,
            &mut out,
        )?;
        Ok(out)
    }

    /// [`merge_reference`](Self::merge_reference) into caller-owned
    /// buffers: the merge adder's precision-control registers, the bank
    /// compute scratch, and the output all reuse their storage, so the
    /// merge kernel performs zero steady-state heap allocation.
    #[allow(clippy::too_many_arguments)]
    fn merge_reference_into<R: rand::Rng + ?Sized>(
        tiles: &[PlannedTile],
        controller: &mut BankController,
        codes: &[i64],
        outputs: usize,
        bias_units: &[i64],
        mut analog: Analog<'_, R>,
        acc: &mut Vec<PrecisionController>,
        bank: &mut BankScratch,
        tile_out: &mut Vec<i64>,
        out: &mut Vec<i64>,
    ) -> Result<(), PrimeError> {
        acc.clear();
        acc.resize_with(outputs, PrecisionController::new);
        for (o, &b) in acc.iter_mut().zip(bias_units) {
            o.accumulate(b, 0);
        }
        for tile in tiles {
            let (r0, r1) = tile.rows;
            // Stage the tile's input slice through the buffer: the
            // `load` command moves it into the mat latch.
            let slice = &codes[r0..r1];
            controller.buffer_mut().store(BufAddr(0), slice)?;
            controller.execute(Command::Load {
                from: BufAddr(0),
                to: FfAddr {
                    mat: tile.mat,
                    offset: 0,
                },
                bytes: (slice.len() * 8) as u64,
            })?;
            match analog.as_mut() {
                None => controller.compute_mat_into(tile.mat, bank, tile_out)?,
                Some((noise, rng)) => controller
                    .compute_mat_analog_into(tile.mat, noise, &mut **rng, bank, tile_out)?,
            }
            let (c0, c1) = tile.cols;
            for (i, &v) in tile_out.iter().enumerate().take(c1 - c0) {
                // Expand the tile's truncated code back to full-precision
                // units before the merge add.
                acc[c0 + i].accumulate(v, tile.shift);
            }
        }
        out.clear();
        out.extend(acc.iter().map(|m| m.value()));
        Ok(())
    }

    /// Runs one layer on input codes, returning the next layer's codes
    /// clamped to the scheme's input-code range.
    fn forward_codes(
        plan: &PlannedLayer,
        controller: &mut BankController,
        codes: &[i64],
        scheme: &ComposingScheme,
    ) -> Result<Vec<i64>, PrimeError> {
        let code_max = i64::from(scheme.input_code_max());
        let merged = Self::merge_reference(
            &plan.tiles,
            controller,
            codes,
            plan.outputs,
            &plan.bias_units,
        )?;
        Ok(merged
            .into_iter()
            .map(|v| {
                let v = if plan.relu { v.max(0) } else { v };
                (v >> plan.requant_shift).clamp(-code_max, code_max)
            })
            .collect())
    }

    /// Runs one inference entirely through controller commands: the input
    /// is quantized, staged into the Buffer subarray, flowed through
    /// every planned layer, and the final merged values are rescaled to
    /// real outputs.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::BufferOverflow`] or mat errors on a
    /// mis-sized input.
    pub fn infer(
        &mut self,
        controller: &mut BankController,
        input: &[f32],
    ) -> Result<Vec<f32>, PrimeError> {
        let mut scratch = InferScratch::new();
        let mut out = Vec::new();
        self.infer_into(controller, input, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// [`infer`](Self::infer) into caller-owned buffers.
    ///
    /// `out` is cleared and refilled with the real-valued outputs. With a
    /// reused `scratch`, every buffer the forward pass touches — layer
    /// codes, mat latches, driver passes, the merge adder's registers —
    /// reuses its storage, so steady-state inference performs zero heap
    /// allocation (the command log is the only growth). Bit-identical to
    /// [`infer`](Self::infer).
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::BufferOverflow`] or mat errors on a
    /// mis-sized input.
    pub fn infer_into(
        &self,
        controller: &mut BankController,
        input: &[f32],
        scratch: &mut InferScratch,
        out: &mut Vec<f32>,
    ) -> Result<(), PrimeError> {
        self.infer_impl(controller, input, NoAnalog::None, scratch, out)
    }

    /// Noisy-hardware variant of [`infer_into`](Self::infer_into): every
    /// tile evaluates through the analog voltage/conductance domain with
    /// read noise drawn from `rng` (plus any programming noise already
    /// applied to the mats). Tiles draw from `rng` in plan order, so a
    /// given RNG state makes the inference reproducible.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::BufferOverflow`] or mat errors on a
    /// mis-sized input.
    pub fn infer_noisy_into<R: rand::Rng + ?Sized>(
        &self,
        controller: &mut BankController,
        input: &[f32],
        noise: &NoiseModel,
        rng: &mut R,
        scratch: &mut InferScratch,
        out: &mut Vec<f32>,
    ) -> Result<(), PrimeError> {
        self.infer_impl(controller, input, Some((noise, rng)), scratch, out)
    }

    fn infer_impl<R: rand::Rng + ?Sized>(
        &self,
        controller: &mut BankController,
        input: &[f32],
        mut analog: Analog<'_, R>,
        scratch: &mut InferScratch,
        out: &mut Vec<f32>,
    ) -> Result<(), PrimeError> {
        let first = self.layers.first().ok_or(PrimeError::MappingMismatch {
            reason: "empty plan".to_string(),
        })?;
        if input.len() != first.inputs {
            return Err(PrimeError::MappingMismatch {
                reason: format!("{} inputs for a {}-input plan", input.len(), first.inputs),
            });
        }
        let in_code_max = f32::from(self.scheme.input_code_max());
        let fwd_code_max = i64::from(self.scheme.input_code_max());
        let InferScratch {
            codes,
            next_codes,
            merge_acc,
            merged,
            tile_out,
            bank,
        } = scratch;
        codes.clear();
        codes.extend(
            input
                .iter()
                .map(|&v| ((v / self.input_scale).round().clamp(0.0, in_code_max)) as i64),
        );
        let last = self.layers.len() - 1;
        for (i, plan) in self.layers.iter().enumerate() {
            controller.buffer_mut().store(plan.in_addr, codes)?;
            Self::merge_reference_into(
                &plan.tiles,
                controller,
                codes,
                plan.outputs,
                &plan.bias_units,
                analog.as_mut().map(|(noise, rng)| (*noise, &mut **rng)),
                merge_acc,
                bank,
                tile_out,
                merged,
            )?;
            if i == last {
                // Final layer: keep full-precision merged values for the
                // real-valued output.
                let unit = self.output_scale / (plan.requant_shift as f32).exp2();
                out.clear();
                out.extend(merged.iter().map(|&v| {
                    let v = if plan.relu { v.max(0) } else { v };
                    v as f32 * unit
                }));
                return Ok(());
            }
            next_codes.clear();
            next_codes.extend(merged.iter().map(|&v| {
                let v = if plan.relu { v.max(0) } else { v };
                (v >> plan.requant_shift).clamp(-fwd_code_max, fwd_code_max)
            }));
            std::mem::swap(codes, next_codes);
            controller.buffer_mut().store(plan.out_addr, codes)?;
        }
        unreachable!("loop returns on the last layer")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prime_nn::FullyConnected;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn relu_net(rng: &mut SmallRng) -> Network {
        let mut net = Network::new(vec![
            Layer::Fc(FullyConnected::new(20, 12, Activation::Relu)),
            Layer::Fc(FullyConnected::new(12, 4, Activation::Identity)),
        ])
        .expect("widths match");
        net.init_random(rng);
        net
    }

    #[test]
    fn command_runner_tracks_software_outputs() {
        let mut rng = SmallRng::seed_from_u64(21);
        let net = relu_net(&mut rng);
        let input: Vec<f32> = (0..20).map(|i| ((i * 7 % 13) as f32) / 13.0).collect();
        let mut controller = BankController::new(2, 8, 4096, 8192);
        let mut runner = CommandRunner::compile(&net, &mut controller, &input).unwrap();
        let hw = runner.infer(&mut controller, &input).unwrap();
        let sw = net.forward(&input).unwrap();
        let max = sw.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(0.2);
        for (a, b) in hw.iter().zip(&sw) {
            assert!((a - b).abs() / max < 0.25, "hw {a} vs sw {b}");
        }
        assert!(runner.mats_used() >= 2);
    }

    #[test]
    fn command_runner_agrees_on_argmax_across_inputs() {
        let mut rng = SmallRng::seed_from_u64(22);
        let net = relu_net(&mut rng);
        let calib: Vec<f32> = vec![0.5; 20];
        let mut controller = BankController::new(2, 8, 4096, 8192);
        let mut runner = CommandRunner::compile(&net, &mut controller, &calib).unwrap();
        let mut agree = 0;
        let trials = 10;
        for t in 0..trials {
            let input: Vec<f32> = (0..20)
                .map(|i| (((i + t) * 11 % 17) as f32) / 17.0)
                .collect();
            let hw = runner.infer(&mut controller, &input).unwrap();
            let sw = net.forward(&input).unwrap();
            if argmax(&hw) == argmax(&sw) {
                agree += 1;
            }
        }
        assert!(
            agree >= trials - 2,
            "only {agree}/{trials} argmax agreements"
        );
    }

    #[test]
    fn command_runner_rejects_unsupported_layers() {
        let mut rng = SmallRng::seed_from_u64(23);
        let mut net = Network::new(vec![Layer::Fc(FullyConnected::new(
            8,
            4,
            Activation::Sigmoid,
        ))])
        .expect("widths match");
        net.init_random(&mut rng);
        let mut controller = BankController::new(1, 4, 1024, 1024);
        let err = CommandRunner::compile(&net, &mut controller, &[0.5; 8]);
        assert!(matches!(err, Err(PrimeError::MappingMismatch { .. })));
    }

    #[test]
    fn command_runner_respects_mat_budget() {
        let mut rng = SmallRng::seed_from_u64(24);
        // 600-input layer needs 3 row tiles; give the controller only 2 mats.
        let mut net = Network::new(vec![Layer::Fc(FullyConnected::new(
            600,
            4,
            Activation::Identity,
        ))])
        .expect("widths match");
        net.init_random(&mut rng);
        let mut controller = BankController::new(1, 2, 2048, 1024);
        let err = CommandRunner::compile(&net, &mut controller, &vec![0.5; 600]);
        assert!(matches!(err, Err(PrimeError::MappingMismatch { .. })));
    }

    #[test]
    fn inference_is_driven_by_commands() {
        let mut rng = SmallRng::seed_from_u64(25);
        let net = relu_net(&mut rng);
        let input: Vec<f32> = vec![0.4; 20];
        let mut controller = BankController::new(2, 8, 4096, 8192);
        let mut runner = CommandRunner::compile(&net, &mut controller, &input).unwrap();
        let before = controller.log().len();
        runner.infer(&mut controller, &input).unwrap();
        let issued = controller.log().len() - before;
        // At least one load per tile per layer.
        assert!(
            issued >= runner.mats_used(),
            "only {issued} commands issued"
        );
    }

    fn argmax(v: &[f32]) -> usize {
        let mut best = 0;
        for (i, &x) in v.iter().enumerate() {
            if x > v[best] {
                best = i;
            }
        }
        best
    }
}
