//! Command-driven network execution through the bank controller.
//!
//! [`FfExecutor`](crate::FfExecutor) proves numerical fidelity; this
//! module proves *protocol* fidelity: a fully-connected network is
//! compiled into an integer plan (per-layer quantized weights, SA
//! windows, and buffer addresses), programmed into a
//! [`BankController`]'s mats, and then every inference is driven purely
//! by Table I commands — `load` staging inputs from the Buffer subarray
//! into mat latches, mat computation, `store` returning outputs — with
//! row-tile merging on the precision-control adder and integer
//! requantization between layers, exactly the dataflow of paper Fig. 5(a).
//!
//! The runner supports the activation functions PRIME's output units
//! implement exactly in the integer domain (ReLU and identity); sigmoid
//! networks are covered by the analog-calibrated
//! [`FfExecutor`](crate::FfExecutor) path.

use serde::{Deserialize, Serialize};

use prime_circuits::PrecisionController;
use prime_mem::{BufAddr, Command, FfAddr, MatAddr, MatFunction};
use prime_nn::{Activation, Layer, Network};

use crate::controller::BankController;
use crate::error::PrimeError;

/// One mat-sized tile of a planned layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct PlannedTile {
    mat: MatAddr,
    /// Row span [start, end) within the layer's input vector.
    rows: (usize, usize),
    /// Column span [start, end) within the layer's output vector.
    cols: (usize, usize),
    /// The tile's SA shift (read back after programming).
    shift: u8,
}

/// One planned fully-connected layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct PlannedLayer {
    tiles: Vec<PlannedTile>,
    inputs: usize,
    outputs: usize,
    /// Bias in merged full-precision units.
    bias_units: Vec<i64>,
    /// Right shift taking merged full-precision sums to 6-bit codes for
    /// the next layer (calibrated).
    requant_shift: u8,
    relu: bool,
    /// Buffer address where this layer's input codes live.
    in_addr: BufAddr,
    /// Buffer address where this layer's output codes are stored.
    out_addr: BufAddr,
}

/// A compiled, programmed, command-driven network.
///
/// # Examples
///
/// ```no_run
/// use prime_core::{BankController, CommandRunner};
/// use prime_nn::{Activation, FullyConnected, Layer, Network};
///
/// let net = Network::new(vec![
///     Layer::Fc(FullyConnected::new(16, 8, Activation::Relu)),
///     Layer::Fc(FullyConnected::new(8, 4, Activation::Identity)),
/// ])?;
/// let mut controller = BankController::new(2, 64, 4096, 8192);
/// let mut runner = CommandRunner::compile(&net, &mut controller, &[0.5; 16])?;
/// let out = runner.infer(&mut controller, &[0.5; 16])?;
/// assert_eq!(out.len(), 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommandRunner {
    layers: Vec<PlannedLayer>,
    /// Scale of the network-input quantization (codes = value / scale).
    input_scale: f32,
    /// Combined output scale: real value = merged units * this.
    output_scale: f32,
    mats_used: usize,
}

impl CommandRunner {
    /// Compiles `net` (fully-connected, ReLU/identity activations only)
    /// onto the controller's FF mats: quantizes weights, programs tiles,
    /// and calibrates every SA window and requantization shift with the
    /// representative `calibration_input`.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::MappingMismatch`] for unsupported layers or
    /// if the controller has too few mats.
    pub fn compile(
        net: &Network,
        controller: &mut BankController,
        calibration_input: &[f32],
    ) -> Result<Self, PrimeError> {
        let mats_per_subarray = controller.mats_per_subarray();
        let total_mats = controller.ff_subarrays() * mats_per_subarray;
        let mut next_mat = 0usize;
        let mut planned = Vec::new();
        let mut buf_cursor: u64 = 0;

        // Input quantization scale from the calibration vector.
        let in_max = calibration_input.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(1e-6);
        let input_scale = in_max / 63.0;
        let mut codes: Vec<i64> = calibration_input
            .iter()
            .map(|&v| ((v / input_scale).round().clamp(0.0, 63.0)) as i64)
            .collect();
        let mut value_scale = input_scale; // real value of one input code unit

        for layer in net.layers() {
            let Layer::Fc(fc) = layer else {
                return Err(PrimeError::MappingMismatch {
                    reason: format!(
                        "command runner supports fully-connected layers; got {}",
                        layer.describe()
                    ),
                });
            };
            let relu = match fc.activation() {
                Activation::Relu => true,
                Activation::Identity => false,
                Activation::Sigmoid => {
                    return Err(PrimeError::MappingMismatch {
                        reason: "command runner covers the integer-exact output units \
                                 (ReLU/identity); use FfExecutor for sigmoid networks"
                            .to_string(),
                    })
                }
            };
            let (inputs, outputs) = (fc.inputs(), fc.outputs());
            // Quantize weights to composed 8-bit codes.
            let w = fc.weights().data();
            let w_max = w.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(1e-6);
            let w_scale = w_max / 255.0;
            // Tile and program.
            let row_spans: Vec<(usize, usize)> = (0..inputs.div_ceil(256))
                .map(|t| (t * 256, ((t + 1) * 256).min(inputs)))
                .collect();
            let col_spans: Vec<(usize, usize)> = (0..outputs.div_ceil(128))
                .map(|t| (t * 128, ((t + 1) * 128).min(outputs)))
                .collect();
            let mut tiles = Vec::new();
            for &(r0, r1) in &row_spans {
                for &(c0, c1) in &col_spans {
                    if next_mat >= total_mats {
                        return Err(PrimeError::MappingMismatch {
                            reason: "network needs more FF mats than the bank provides"
                                .to_string(),
                        });
                    }
                    let mat = MatAddr {
                        subarray: next_mat / mats_per_subarray,
                        mat: next_mat % mats_per_subarray,
                    };
                    next_mat += 1;
                    let (tr, tc) = (r1 - r0, c1 - c0);
                    let mut tile_codes = Vec::with_capacity(tr * tc);
                    for r in r0..r1 {
                        for c in c0..c1 {
                            // Weight matrix is [outputs, inputs]; the
                            // crossbar wants [inputs, outputs].
                            let value = w[c * inputs + r];
                            tile_codes
                                .push(((value / w_scale).round().clamp(-255.0, 255.0)) as i32);
                        }
                    }
                    controller
                        .execute(Command::SetFunction { mat, function: MatFunction::Program })?;
                    controller.mat_mut(mat).program_composed(&tile_codes, tr, tc)?;
                    controller
                        .execute(Command::SetFunction { mat, function: MatFunction::Compute })?;
                    // Calibrate the SA window on the calibration codes.
                    let mut max_abs = 1i64;
                    for c in 0..tc {
                        let mut acc = 0i64;
                        for (r, &x) in codes[r0..r1].iter().enumerate() {
                            acc += x * i64::from(tile_codes[r * tc + c]);
                        }
                        max_abs = max_abs.max(acc.abs());
                    }
                    controller.mat_mut(mat).calibrate_output_window(2 * max_abs);
                    let shift = controller.mat(mat).output_shift();
                    tiles.push(PlannedTile { mat, rows: (r0, r1), cols: (c0, c1), shift });
                }
            }
            // Bias in full-precision units: bias_real / (value_scale * w_scale).
            let unit = value_scale * w_scale;
            let bias_units: Vec<i64> =
                fc.bias().iter().map(|&b| (b / unit).round() as i64).collect();
            // Calibrate the requantization shift from the merged
            // calibration activations.
            let merged = Self::merge_reference(&tiles, controller, &codes, outputs, &bias_units)?;
            let out_max = merged.iter().map(|&v| v.abs()).max().unwrap_or(1).max(1);
            let bits = 64 - out_max.leading_zeros() as i64;
            let requant_shift = (bits - 6).max(0) as u8;
            let in_addr = BufAddr(buf_cursor);
            buf_cursor += inputs as u64;
            let out_addr = BufAddr(buf_cursor);
            let plan = PlannedLayer {
                tiles,
                inputs,
                outputs,
                bias_units,
                requant_shift,
                relu,
                in_addr,
                out_addr,
            };
            // Advance the calibration activations through this layer.
            codes = Self::forward_codes(&plan, controller, &codes)?;
            value_scale = unit * (plan.requant_shift as f32).exp2();
            planned.push(plan);
        }
        Ok(CommandRunner {
            layers: planned,
            input_scale,
            output_scale: value_scale,
            mats_used: next_mat,
        })
    }

    /// FF mats the plan occupies.
    pub fn mats_used(&self) -> usize {
        self.mats_used
    }

    /// Full-precision merged sums of one layer on given input codes,
    /// via actual mat computation (used for calibration and inference).
    fn merge_reference(
        tiles: &[PlannedTile],
        controller: &mut BankController,
        codes: &[i64],
        outputs: usize,
        bias_units: &[i64],
    ) -> Result<Vec<i64>, PrimeError> {
        let mut merged: Vec<PrecisionController> =
            (0..outputs).map(|_| PrecisionController::new()).collect();
        for (o, &b) in merged.iter_mut().zip(bias_units) {
            o.accumulate(b, 0);
        }
        for tile in tiles {
            let (r0, r1) = tile.rows;
            // Stage the tile's input slice through the buffer: the
            // `load` command moves it into the mat latch.
            let slice = &codes[r0..r1];
            controller.buffer_mut().store(BufAddr(0), slice)?;
            controller.execute(Command::Load {
                from: BufAddr(0),
                to: FfAddr { mat: tile.mat, offset: 0 },
                bytes: (slice.len() * 8) as u64,
            })?;
            let out = controller.compute_mat(tile.mat)?;
            let (c0, c1) = tile.cols;
            for (i, &v) in out.iter().enumerate().take(c1 - c0) {
                // Expand the tile's truncated code back to full-precision
                // units before the merge add.
                merged[c0 + i].accumulate(v, tile.shift);
            }
        }
        Ok(merged.into_iter().map(|m| m.value()).collect())
    }

    /// Runs one layer on input codes, returning the next layer's codes.
    fn forward_codes(
        plan: &PlannedLayer,
        controller: &mut BankController,
        codes: &[i64],
    ) -> Result<Vec<i64>, PrimeError> {
        let merged =
            Self::merge_reference(&plan.tiles, controller, codes, plan.outputs, &plan.bias_units)?;
        Ok(merged
            .into_iter()
            .map(|v| {
                let v = if plan.relu { v.max(0) } else { v };
                (v >> plan.requant_shift).clamp(-63, 63)
            })
            .collect())
    }

    /// Runs one inference entirely through controller commands: the input
    /// is quantized, staged into the Buffer subarray, flowed through
    /// every planned layer, and the final merged values are rescaled to
    /// real outputs.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::BufferOverflow`] or mat errors on a
    /// mis-sized input.
    pub fn infer(
        &mut self,
        controller: &mut BankController,
        input: &[f32],
    ) -> Result<Vec<f32>, PrimeError> {
        let first = self.layers.first().ok_or(PrimeError::MappingMismatch {
            reason: "empty plan".to_string(),
        })?;
        if input.len() != first.inputs {
            return Err(PrimeError::MappingMismatch {
                reason: format!("{} inputs for a {}-input plan", input.len(), first.inputs),
            });
        }
        let mut codes: Vec<i64> = input
            .iter()
            .map(|&v| ((v / self.input_scale).round().clamp(0.0, 63.0)) as i64)
            .collect();
        let last = self.layers.len() - 1;
        for (i, plan) in self.layers.iter().enumerate() {
            controller.buffer_mut().store(plan.in_addr, &codes)?;
            if i == last {
                // Final layer: keep full-precision merged values for the
                // real-valued output.
                let merged = Self::merge_reference(
                    &plan.tiles,
                    controller,
                    &codes,
                    plan.outputs,
                    &plan.bias_units,
                )?;
                let unit = self.output_scale / (plan.requant_shift as f32).exp2();
                return Ok(merged
                    .into_iter()
                    .map(|v| {
                        let v = if plan.relu { v.max(0) } else { v };
                        v as f32 * unit
                    })
                    .collect());
            }
            codes = Self::forward_codes(plan, controller, &codes)?;
            controller.buffer_mut().store(plan.out_addr, &codes)?;
        }
        unreachable!("loop returns on the last layer")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prime_nn::FullyConnected;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn relu_net(rng: &mut SmallRng) -> Network {
        let mut net = Network::new(vec![
            Layer::Fc(FullyConnected::new(20, 12, Activation::Relu)),
            Layer::Fc(FullyConnected::new(12, 4, Activation::Identity)),
        ])
        .expect("widths match");
        net.init_random(rng);
        net
    }

    #[test]
    fn command_runner_tracks_software_outputs() {
        let mut rng = SmallRng::seed_from_u64(21);
        let net = relu_net(&mut rng);
        let input: Vec<f32> = (0..20).map(|i| ((i * 7 % 13) as f32) / 13.0).collect();
        let mut controller = BankController::new(2, 8, 4096, 8192);
        let mut runner = CommandRunner::compile(&net, &mut controller, &input).unwrap();
        let hw = runner.infer(&mut controller, &input).unwrap();
        let sw = net.forward(&input).unwrap();
        let max = sw.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(0.2);
        for (a, b) in hw.iter().zip(&sw) {
            assert!((a - b).abs() / max < 0.25, "hw {a} vs sw {b}");
        }
        assert!(runner.mats_used() >= 2);
    }

    #[test]
    fn command_runner_agrees_on_argmax_across_inputs() {
        let mut rng = SmallRng::seed_from_u64(22);
        let net = relu_net(&mut rng);
        let calib: Vec<f32> = vec![0.5; 20];
        let mut controller = BankController::new(2, 8, 4096, 8192);
        let mut runner = CommandRunner::compile(&net, &mut controller, &calib).unwrap();
        let mut agree = 0;
        let trials = 10;
        for t in 0..trials {
            let input: Vec<f32> =
                (0..20).map(|i| (((i + t) * 11 % 17) as f32) / 17.0).collect();
            let hw = runner.infer(&mut controller, &input).unwrap();
            let sw = net.forward(&input).unwrap();
            if argmax(&hw) == argmax(&sw) {
                agree += 1;
            }
        }
        assert!(agree >= trials - 2, "only {agree}/{trials} argmax agreements");
    }

    #[test]
    fn command_runner_rejects_unsupported_layers() {
        let mut rng = SmallRng::seed_from_u64(23);
        let mut net = Network::new(vec![Layer::Fc(FullyConnected::new(
            8,
            4,
            Activation::Sigmoid,
        ))])
        .expect("widths match");
        net.init_random(&mut rng);
        let mut controller = BankController::new(1, 4, 1024, 1024);
        let err = CommandRunner::compile(&net, &mut controller, &[0.5; 8]);
        assert!(matches!(err, Err(PrimeError::MappingMismatch { .. })));
    }

    #[test]
    fn command_runner_respects_mat_budget() {
        let mut rng = SmallRng::seed_from_u64(24);
        // 600-input layer needs 3 row tiles; give the controller only 2 mats.
        let mut net = Network::new(vec![Layer::Fc(FullyConnected::new(
            600,
            4,
            Activation::Identity,
        ))])
        .expect("widths match");
        net.init_random(&mut rng);
        let mut controller = BankController::new(1, 2, 2048, 1024);
        let err = CommandRunner::compile(&net, &mut controller, &vec![0.5; 600]);
        assert!(matches!(err, Err(PrimeError::MappingMismatch { .. })));
    }

    #[test]
    fn inference_is_driven_by_commands() {
        let mut rng = SmallRng::seed_from_u64(25);
        let net = relu_net(&mut rng);
        let input: Vec<f32> = vec![0.4; 20];
        let mut controller = BankController::new(2, 8, 4096, 8192);
        let mut runner = CommandRunner::compile(&net, &mut controller, &input).unwrap();
        let before = controller.log().len();
        runner.infer(&mut controller, &input).unwrap();
        let issued = controller.log().len() - before;
        // At least one load per tile per layer.
        assert!(issued >= runner.mats_used(), "only {issued} commands issued");
    }

    fn argmax(v: &[f32]) -> usize {
        let mut best = 0;
        for (i, &x) in v.iter().enumerate() {
            if x > v[best] {
                best = i;
            }
        }
        best
    }
}
