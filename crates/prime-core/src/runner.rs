//! Command-driven network execution through the bank controller.
//!
//! [`FfExecutor`](crate::FfExecutor) proves numerical fidelity; this
//! module proves *protocol* fidelity: a fully-connected network is
//! compiled into an integer plan (per-layer quantized weights, SA
//! windows, and buffer addresses), programmed into a
//! [`BankController`]'s mats, and then every inference is driven purely
//! by Table I commands — `load` staging inputs from the Buffer subarray
//! into mat latches, mat computation, `store` returning outputs — with
//! row-tile merging on the precision-control adder and integer
//! requantization between layers, exactly the dataflow of paper Fig. 5(a).
//!
//! The runner supports the activation functions PRIME's output units
//! implement exactly in the integer domain (ReLU and identity); sigmoid
//! networks are covered by the analog-calibrated
//! [`FfExecutor`](crate::FfExecutor) path.
//!
//! Large-scale networks (paper §IV-B) do not fit one bank: the compiler's
//! [`Mapping::pipeline`](prime_compiler::NetworkMapping) splits them into
//! stages, each assigned to a bank. [`CommandRunner::compile_pipeline`]
//! consumes that stage list as the single source of truth for *where*
//! layers run, placing each stage's tiles on its assigned bank, and the
//! stage-level execution API ([`run_stage`](CommandRunner::run_stage) and
//! friends) lets [`PrimeSystem`](crate::PrimeSystem) move activation
//! vectors between banks at stage boundaries and overlap stages across a
//! batch.

use serde::{Deserialize, Serialize};

use prime_circuits::{ComposingScheme, PrecisionController};
use prime_compiler::PipelineStage;
use prime_device::NoiseModel;
use prime_mem::{BufAddr, Command, FfAddr, MatAddr, MatFunction};
use prime_nn::{Activation, Layer, Network};

use crate::controller::{BankController, BankScratch};
use crate::error::PrimeError;

/// The analog-evaluation knob threaded through the merge kernel: `None`
/// evaluates tiles digitally, `Some` routes every tile through the noisy
/// voltage/conductance domain with the given read-noise model and RNG.
type Analog<'a, R> = Option<(&'a NoiseModel, &'a mut R)>;

/// Concrete digital instantiation for call sites without an RNG.
type NoAnalog<'a> = Analog<'a, rand::rngs::SmallRng>;

/// Reusable buffers for [`CommandRunner::infer_into`].
///
/// Bundles everything one inference needs — staged layer codes, the
/// per-output precision-control registers of the tile merge, and the
/// bank-level compute scratch. Buffers only grow, so after the first
/// inference a reused scratch makes the whole forward pass perform zero
/// steady-state heap allocation. One scratch belongs with one bank
/// (thread-per-bank execution keeps them paired).
#[derive(Debug, Default, Clone)]
pub struct InferScratch {
    /// Current layer's input codes.
    codes: Vec<i64>,
    /// Next layer's codes (swapped with `codes` between layers).
    next_codes: Vec<i64>,
    /// Per-output precision-control registers of the merge adder.
    merge_acc: Vec<PrecisionController>,
    /// Full-precision merged sums of the current layer.
    merged: Vec<i64>,
    /// One tile's post-output-unit results.
    tile_out: Vec<i64>,
    /// Controller-side compute buffers.
    bank: BankScratch,
}

impl InferScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        InferScratch::default()
    }
}

/// One mat-sized tile of a planned layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct PlannedTile {
    mat: MatAddr,
    /// Row span [start, end) within the layer's input vector.
    rows: (usize, usize),
    /// Column span [start, end) within the layer's output vector.
    cols: (usize, usize),
    /// The tile's SA shift (read back after programming).
    shift: u8,
}

/// One stage of the compiled plan: a contiguous run of layers placed on
/// one bank of the slice the plan was compiled against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct PlannedStage {
    /// Index into the bank slice handed to
    /// [`CommandRunner::compile_pipeline`].
    bank: usize,
    /// Layer span [start, end) within the plan's layer list.
    layers: (usize, usize),
}

/// One planned fully-connected layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct PlannedLayer {
    tiles: Vec<PlannedTile>,
    inputs: usize,
    outputs: usize,
    /// Bias in merged full-precision units.
    bias_units: Vec<i64>,
    /// Right shift taking merged full-precision sums to 6-bit codes for
    /// the next layer (calibrated).
    requant_shift: u8,
    relu: bool,
    /// Buffer address where this layer's input codes live.
    in_addr: BufAddr,
    /// Buffer address where this layer's output codes are stored.
    out_addr: BufAddr,
}

/// A compiled, programmed, command-driven network.
///
/// # Examples
///
/// ```no_run
/// use prime_core::{BankController, CommandRunner};
/// use prime_nn::{Activation, FullyConnected, Layer, Network};
///
/// let net = Network::new(vec![
///     Layer::Fc(FullyConnected::new(16, 8, Activation::Relu)),
///     Layer::Fc(FullyConnected::new(8, 4, Activation::Identity)),
/// ])?;
/// let mut controller = BankController::new(2, 64, 4096, 8192);
/// let mut runner = CommandRunner::compile(&net, &mut controller, &[0.5; 16])?;
/// let out = runner.infer(&mut controller, &[0.5; 16])?;
/// assert_eq!(out.len(), 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommandRunner {
    layers: Vec<PlannedLayer>,
    /// Stage placement: contiguous layer spans on strictly increasing
    /// banks (a single stage on bank 0 for single-bank plans).
    stages: Vec<PlannedStage>,
    /// Scale of the network-input quantization (codes = value / scale).
    input_scale: f32,
    /// Combined output scale: real value = merged units * this.
    output_scale: f32,
    mats_used: usize,
    /// The composing scheme of the mats the plan was compiled for — the
    /// single source of truth for input/output code bounds.
    scheme: ComposingScheme,
}

impl CommandRunner {
    /// Compiles `net` (fully-connected, ReLU/identity activations only)
    /// onto the controller's FF mats: quantizes weights, programs tiles,
    /// and calibrates every SA window and requantization shift with the
    /// representative `calibration_input`.
    ///
    /// The whole network is placed as one stage on this bank; use
    /// [`compile_pipeline`](Self::compile_pipeline) for networks that
    /// span banks.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::MappingMismatch`] for unsupported layers or
    /// if the controller has too few mats.
    pub fn compile(
        net: &Network,
        controller: &mut BankController,
        calibration_input: &[f32],
    ) -> Result<Self, PrimeError> {
        Self::compile_pipeline(net, std::slice::from_mut(controller), &[], calibration_input)
    }

    /// Resolves a compiler [`PipelineStage`] list into per-stage layer
    /// spans. Stage legality (banks strictly increasing, contiguous layer
    /// coverage, no empty stage, banks in range) is checked by the shared
    /// [`prime_analyze::check_pipeline`] pass — the same rules the static
    /// deployment verifier applies — so the runtime and the verifier can
    /// never drift apart. An empty `pipeline` means one stage holding
    /// every layer on bank 0.
    fn resolve_stages(
        pipeline: &[PipelineStage],
        n_layers: usize,
        n_banks: usize,
    ) -> Result<Vec<PlannedStage>, PrimeError> {
        if pipeline.is_empty() {
            return Ok(vec![PlannedStage {
                bank: 0,
                layers: (0, n_layers),
            }]);
        }
        let diags = prime_analyze::check_pipeline(pipeline, n_layers, n_banks, None);
        if let Some(err) = diags
            .iter()
            .find(|d| d.severity == prime_analyze::Severity::Error)
        {
            return Err(PrimeError::MappingMismatch {
                reason: err.to_string(),
            });
        }
        let mut stages = Vec::with_capacity(pipeline.len());
        let mut next_layer = 0usize;
        for stage in pipeline {
            let start = next_layer;
            next_layer += stage.layers.len();
            stages.push(PlannedStage {
                bank: stage.bank,
                layers: (start, next_layer),
            });
        }
        Ok(stages)
    }

    /// Compiles `net` across `banks` following the compiler's
    /// `Mapping::pipeline` stage list (paper §IV-B large-scale mapping):
    /// each stage's layers are tiled, programmed, and calibrated on the
    /// stage's assigned bank. The stage list is the single source of
    /// truth for *where* layers run; an empty `pipeline` places the whole
    /// network on `banks[0]` (the small/medium-scale case).
    ///
    /// Placement does not change arithmetic: a pipelined plan produces
    /// bit-identical outputs to the same network compiled onto one
    /// sufficiently large bank.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::MappingMismatch`] for unsupported layers, a
    /// malformed stage list, or a stage needing more FF mats than its
    /// bank provides.
    pub fn compile_pipeline(
        net: &Network,
        banks: &mut [BankController],
        pipeline: &[PipelineStage],
        calibration_input: &[f32],
    ) -> Result<Self, PrimeError> {
        if banks.is_empty() {
            return Err(PrimeError::MappingMismatch {
                reason: "cannot compile onto zero banks".to_string(),
            });
        }
        let stages = Self::resolve_stages(pipeline, net.layers().len(), banks.len())?;
        // Code bounds come from the mats' composing scheme (Pin/Po), not
        // hard-coded constants — the quantizer and every downstream clamp
        // share this single source of truth. All banks are constructed
        // identically, so the first stage's bank is representative.
        let first_bank = &banks[stages[0].bank];
        let (scheme, mat_rows, mat_cols) =
            if first_bank.ff_subarrays() * first_bank.mats_per_subarray() > 0 {
                let mat = first_bank.mat(MatAddr {
                    subarray: 0,
                    mat: 0,
                });
                (mat.scheme(), mat.max_rows(), mat.max_cols())
            } else {
                (ComposingScheme::prime_default(), 256, 128)
            };
        let in_code_max = f32::from(scheme.input_code_max());
        let mut planned = Vec::new();
        let mut mats_used = 0usize;

        // Input quantization scale from the calibration vector.
        let in_max = calibration_input
            .iter()
            .fold(0.0f32, |m, &v| m.max(v.abs()))
            .max(1e-6);
        let input_scale = in_max / in_code_max;
        let mut codes: Vec<i64> = calibration_input
            .iter()
            .map(|&v| ((v / input_scale).round().clamp(0.0, in_code_max)) as i64)
            .collect();
        let mut value_scale = input_scale; // real value of one input code unit

        for stage in &stages {
            let controller = &mut banks[stage.bank];
            let mats_per_subarray = controller.mats_per_subarray();
            let total_mats = controller.ff_subarrays() * mats_per_subarray;
            // Mat allocation and buffer addressing restart per bank: each
            // stage owns its bank's FF mats and Buffer subarray.
            let mut next_mat = 0usize;
            let mut buf_cursor: u64 = 0;
            for layer in &net.layers()[stage.layers.0..stage.layers.1] {
                let Layer::Fc(fc) = layer else {
                    return Err(PrimeError::MappingMismatch {
                        reason: format!(
                            "command runner supports fully-connected layers; got {}",
                            layer.describe()
                        ),
                    });
                };
                let relu = match fc.activation() {
                    Activation::Relu => true,
                    Activation::Identity => false,
                    Activation::Sigmoid => {
                        return Err(PrimeError::MappingMismatch {
                            reason: "command runner covers the integer-exact output units \
                                     (ReLU/identity); use FfExecutor for sigmoid networks"
                                .to_string(),
                        })
                    }
                };
                let (inputs, outputs) = (fc.inputs(), fc.outputs());
                // Quantize weights to composed 8-bit codes.
                let w = fc.weights().data();
                let w_max = w.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(1e-6);
                let w_scale = w_max / 255.0;
                // Tile and program.
                let row_spans: Vec<(usize, usize)> = (0..inputs.div_ceil(mat_rows))
                    .map(|t| (t * mat_rows, ((t + 1) * mat_rows).min(inputs)))
                    .collect();
                let col_spans: Vec<(usize, usize)> = (0..outputs.div_ceil(mat_cols))
                    .map(|t| (t * mat_cols, ((t + 1) * mat_cols).min(outputs)))
                    .collect();
                let mut tiles = Vec::new();
                for &(r0, r1) in &row_spans {
                    for &(c0, c1) in &col_spans {
                        if next_mat >= total_mats {
                            return Err(PrimeError::MappingMismatch {
                                reason: "network needs more FF mats than the bank provides"
                                    .to_string(),
                            });
                        }
                        let mat = MatAddr {
                            subarray: next_mat / mats_per_subarray,
                            mat: next_mat % mats_per_subarray,
                        };
                        next_mat += 1;
                        let (tr, tc) = (r1 - r0, c1 - c0);
                        let mut tile_codes = Vec::with_capacity(tr * tc);
                        for r in r0..r1 {
                            for c in c0..c1 {
                                // Weight matrix is [outputs, inputs]; the
                                // crossbar wants [inputs, outputs].
                                let value = w[c * inputs + r];
                                tile_codes
                                    .push(((value / w_scale).round().clamp(-255.0, 255.0)) as i32);
                            }
                        }
                        controller.execute(Command::SetFunction {
                            mat,
                            function: MatFunction::Program,
                        })?;
                        controller
                            .mat_mut(mat)
                            .program_composed(&tile_codes, tr, tc)?;
                        controller.execute(Command::SetFunction {
                            mat,
                            function: MatFunction::Compute,
                        })?;
                        // Calibrate the SA window on the calibration codes.
                        let mut max_abs = 1i64;
                        for c in 0..tc {
                            let mut acc = 0i64;
                            for (r, &x) in codes[r0..r1].iter().enumerate() {
                                acc += x * i64::from(tile_codes[r * tc + c]);
                            }
                            max_abs = max_abs.max(acc.abs());
                        }
                        controller.mat_mut(mat).calibrate_output_window(2 * max_abs);
                        let shift = controller.mat(mat).output_shift();
                        tiles.push(PlannedTile {
                            mat,
                            rows: (r0, r1),
                            cols: (c0, c1),
                            shift,
                        });
                    }
                }
                // Bias in full-precision units: bias_real / (value_scale * w_scale).
                let unit = value_scale * w_scale;
                let bias_units: Vec<i64> = fc
                    .bias()
                    .iter()
                    .map(|&b| (b / unit).round() as i64)
                    .collect();
                // Calibrate the requantization shift from the merged
                // calibration activations.
                let merged =
                    Self::merge_reference(&tiles, controller, &codes, outputs, &bias_units)?;
                let out_max = merged.iter().map(|&v| v.abs()).max().unwrap_or(1).max(1);
                let bits = 64 - out_max.leading_zeros() as i64;
                // Requantize down to the scheme's input precision so the next
                // layer's codes fit its Pin-bit drivers.
                let requant_shift = (bits - i64::from(scheme.input_bits())).max(0) as u8;
                let in_addr = BufAddr(buf_cursor);
                buf_cursor += inputs as u64;
                let out_addr = BufAddr(buf_cursor);
                let plan = PlannedLayer {
                    tiles,
                    inputs,
                    outputs,
                    bias_units,
                    requant_shift,
                    relu,
                    in_addr,
                    out_addr,
                };
                // Advance the calibration activations through this layer.
                codes = Self::forward_codes(&plan, controller, &codes, &scheme)?;
                value_scale = unit * (plan.requant_shift as f32).exp2();
                planned.push(plan);
            }
            mats_used += next_mat;
        }
        Ok(CommandRunner {
            layers: planned,
            stages,
            input_scale,
            output_scale: value_scale,
            mats_used,
            scheme,
        })
    }

    /// Number of pipeline stages the plan executes (1 for single-bank
    /// plans).
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// The bank (index into the compile-time bank slice) hosting `stage`.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range.
    pub fn stage_bank(&self, stage: usize) -> usize {
        self.stages[stage].bank
    }

    /// Banks the plan occupies (`last stage bank + 1`).
    pub fn banks_spanned(&self) -> usize {
        self.stages.last().map_or(1, |s| s.bank + 1)
    }

    /// Buffer address and width of `stage`'s input vector in its bank.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range.
    pub fn stage_input(&self, stage: usize) -> (BufAddr, usize) {
        let layer = &self.layers[self.stages[stage].layers.0];
        (layer.in_addr, layer.inputs)
    }

    /// Buffer address and width of `stage`'s output vector in its bank
    /// (the source of the inter-bank transfer into the next stage).
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range.
    pub fn stage_output(&self, stage: usize) -> (BufAddr, usize) {
        let layer = &self.layers[self.stages[stage].layers.1 - 1];
        (layer.out_addr, layer.outputs)
    }

    /// FF mats the plan occupies.
    pub fn mats_used(&self) -> usize {
        self.mats_used
    }

    /// Full-precision merged sums of one layer on given input codes,
    /// via actual mat computation (used for calibration and inference).
    fn merge_reference(
        tiles: &[PlannedTile],
        controller: &mut BankController,
        codes: &[i64],
        outputs: usize,
        bias_units: &[i64],
    ) -> Result<Vec<i64>, PrimeError> {
        let mut acc = Vec::new();
        let mut bank = BankScratch::new();
        let mut tile_out = Vec::new();
        let mut out = Vec::new();
        Self::merge_reference_into(
            tiles,
            controller,
            codes,
            outputs,
            bias_units,
            NoAnalog::None,
            &mut acc,
            &mut bank,
            &mut tile_out,
            &mut out,
        )?;
        Ok(out)
    }

    /// [`merge_reference`](Self::merge_reference) into caller-owned
    /// buffers: the merge adder's precision-control registers, the bank
    /// compute scratch, and the output all reuse their storage, so the
    /// merge kernel performs zero steady-state heap allocation.
    #[allow(clippy::too_many_arguments)]
    fn merge_reference_into<R: rand::Rng + ?Sized>(
        tiles: &[PlannedTile],
        controller: &mut BankController,
        codes: &[i64],
        outputs: usize,
        bias_units: &[i64],
        mut analog: Analog<'_, R>,
        acc: &mut Vec<PrecisionController>,
        bank: &mut BankScratch,
        tile_out: &mut Vec<i64>,
        out: &mut Vec<i64>,
    ) -> Result<(), PrimeError> {
        acc.clear();
        acc.resize_with(outputs, PrecisionController::new);
        for (o, &b) in acc.iter_mut().zip(bias_units) {
            o.accumulate(b, 0);
        }
        for tile in tiles {
            let (r0, r1) = tile.rows;
            // Stage the tile's input slice through the buffer: the
            // `load` command moves it into the mat latch.
            let slice = &codes[r0..r1];
            controller.buffer_mut().store(BufAddr(0), slice)?;
            controller.execute(Command::Load {
                from: BufAddr(0),
                to: FfAddr {
                    mat: tile.mat,
                    offset: 0,
                },
                bytes: (slice.len() * 8) as u64,
            })?;
            match analog.as_mut() {
                None => controller.compute_mat_into(tile.mat, bank, tile_out)?,
                Some((noise, rng)) => controller
                    .compute_mat_analog_into(tile.mat, noise, &mut **rng, bank, tile_out)?,
            }
            let (c0, c1) = tile.cols;
            for (i, &v) in tile_out.iter().enumerate().take(c1 - c0) {
                // Expand the tile's truncated code back to full-precision
                // units before the merge add.
                acc[c0 + i].accumulate(v, tile.shift);
            }
        }
        out.clear();
        out.extend(acc.iter().map(|m| m.value()));
        Ok(())
    }

    /// Runs one layer on input codes, returning the next layer's codes
    /// clamped to the scheme's input-code range.
    fn forward_codes(
        plan: &PlannedLayer,
        controller: &mut BankController,
        codes: &[i64],
        scheme: &ComposingScheme,
    ) -> Result<Vec<i64>, PrimeError> {
        let code_max = i64::from(scheme.input_code_max());
        let merged = Self::merge_reference(
            &plan.tiles,
            controller,
            codes,
            plan.outputs,
            &plan.bias_units,
        )?;
        Ok(merged
            .into_iter()
            .map(|v| {
                let v = if plan.relu { v.max(0) } else { v };
                (v >> plan.requant_shift).clamp(-code_max, code_max)
            })
            .collect())
    }

    /// Runs one inference entirely through controller commands: the input
    /// is quantized, staged into the Buffer subarray, flowed through
    /// every planned layer, and the final merged values are rescaled to
    /// real outputs.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::BufferOverflow`] or mat errors on a
    /// mis-sized input.
    pub fn infer(
        &mut self,
        controller: &mut BankController,
        input: &[f32],
    ) -> Result<Vec<f32>, PrimeError> {
        let mut scratch = InferScratch::new();
        let mut out = Vec::new();
        self.infer_into(controller, input, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// [`infer`](Self::infer) into caller-owned buffers.
    ///
    /// `out` is cleared and refilled with the real-valued outputs. With a
    /// reused `scratch`, every buffer the forward pass touches — layer
    /// codes, mat latches, driver passes, the merge adder's registers —
    /// reuses its storage, so steady-state inference performs zero heap
    /// allocation (the command log is the only growth). Bit-identical to
    /// [`infer`](Self::infer).
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::BufferOverflow`] or mat errors on a
    /// mis-sized input.
    pub fn infer_into(
        &self,
        controller: &mut BankController,
        input: &[f32],
        scratch: &mut InferScratch,
        out: &mut Vec<f32>,
    ) -> Result<(), PrimeError> {
        self.infer_impl(controller, input, NoAnalog::None, scratch, out)
    }

    /// Noisy-hardware variant of [`infer_into`](Self::infer_into): every
    /// tile evaluates through the analog voltage/conductance domain with
    /// read noise drawn from `rng` (plus any programming noise already
    /// applied to the mats). Tiles draw from `rng` in plan order, so a
    /// given RNG state makes the inference reproducible.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::BufferOverflow`] or mat errors on a
    /// mis-sized input.
    pub fn infer_noisy_into<R: rand::Rng + ?Sized>(
        &self,
        controller: &mut BankController,
        input: &[f32],
        noise: &NoiseModel,
        rng: &mut R,
        scratch: &mut InferScratch,
        out: &mut Vec<f32>,
    ) -> Result<(), PrimeError> {
        self.infer_impl(controller, input, Some((noise, rng)), scratch, out)
    }

    fn infer_impl<R: rand::Rng + ?Sized>(
        &self,
        controller: &mut BankController,
        input: &[f32],
        analog: Analog<'_, R>,
        scratch: &mut InferScratch,
        out: &mut Vec<f32>,
    ) -> Result<(), PrimeError> {
        if self.banks_spanned() > 1 {
            return Err(PrimeError::MappingMismatch {
                reason: format!(
                    "plan spans {} banks; drive it stage by stage or via PrimeSystem",
                    self.banks_spanned()
                ),
            });
        }
        // Single-bank plans hold exactly one stage covering every layer;
        // the scratch's resident code vector is the traveling activation.
        let mut codes = std::mem::take(&mut scratch.codes);
        let result = self.quantize_input(input, &mut codes).and_then(|()| {
            self.run_stage_impl(0, controller, analog, scratch, &mut codes, Some(out))
        });
        scratch.codes = codes;
        result
    }

    /// Quantizes a real-valued network input into stage-0 input codes
    /// using the plan's calibrated input scale. `codes` is cleared and
    /// refilled (no steady-state allocation when reused).
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::MappingMismatch`] on a mis-sized input or an
    /// empty plan.
    pub fn quantize_input(&self, input: &[f32], codes: &mut Vec<i64>) -> Result<(), PrimeError> {
        let first = self.layers.first().ok_or(PrimeError::MappingMismatch {
            reason: "empty plan".to_string(),
        })?;
        if input.len() != first.inputs {
            return Err(PrimeError::MappingMismatch {
                reason: format!("{} inputs for a {}-input plan", input.len(), first.inputs),
            });
        }
        let in_code_max = f32::from(self.scheme.input_code_max());
        codes.clear();
        codes.extend(
            input
                .iter()
                .map(|&v| ((v / self.input_scale).round().clamp(0.0, in_code_max)) as i64),
        );
        Ok(())
    }

    /// Runs one pipeline stage on its bank: `codes` enters holding the
    /// stage's input activation codes and leaves holding its output codes
    /// (non-final stages) with the bank's buffer updated at the stage
    /// output address. The final stage instead fills `out` with the
    /// real-valued network outputs. Digital path.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::MappingMismatch`] for a missing `out` on the
    /// final stage, or buffer/mat errors.
    pub fn run_stage(
        &self,
        stage: usize,
        bank: &mut BankController,
        scratch: &mut InferScratch,
        codes: &mut Vec<i64>,
        out: Option<&mut Vec<f32>>,
    ) -> Result<(), PrimeError> {
        self.run_stage_impl(stage, bank, NoAnalog::None, scratch, codes, out)
    }

    /// Noisy-hardware variant of [`run_stage`](Self::run_stage): every
    /// tile of the stage evaluates through the analog domain drawing read
    /// noise from `rng`. Each stage's bank owns its own RNG stream, so
    /// overlapped (pipelined) and serial execution consume identical
    /// per-bank sequences.
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::MappingMismatch`] for a missing `out` on the
    /// final stage, or buffer/mat errors.
    #[allow(clippy::too_many_arguments)]
    pub fn run_stage_noisy<R: rand::Rng + ?Sized>(
        &self,
        stage: usize,
        bank: &mut BankController,
        noise: &NoiseModel,
        rng: &mut R,
        scratch: &mut InferScratch,
        codes: &mut Vec<i64>,
        out: Option<&mut Vec<f32>>,
    ) -> Result<(), PrimeError> {
        self.run_stage_impl(stage, bank, Some((noise, rng)), scratch, codes, out)
    }

    fn run_stage_impl<R: rand::Rng + ?Sized>(
        &self,
        stage: usize,
        bank: &mut BankController,
        mut analog: Analog<'_, R>,
        scratch: &mut InferScratch,
        codes: &mut Vec<i64>,
        mut out: Option<&mut Vec<f32>>,
    ) -> Result<(), PrimeError> {
        let (start, end) = self.stages[stage].layers;
        let last_global = self.layers.len() - 1;
        let fwd_code_max = i64::from(self.scheme.input_code_max());
        let InferScratch {
            next_codes,
            merge_acc,
            merged,
            tile_out,
            bank: bank_scratch,
            ..
        } = scratch;
        for (i, plan) in self.layers[start..end].iter().enumerate() {
            bank.buffer_mut().store(plan.in_addr, codes)?;
            Self::merge_reference_into(
                &plan.tiles,
                bank,
                codes,
                plan.outputs,
                &plan.bias_units,
                analog.as_mut().map(|(noise, rng)| (*noise, &mut **rng)),
                merge_acc,
                bank_scratch,
                tile_out,
                merged,
            )?;
            if start + i == last_global {
                // Final layer: keep full-precision merged values for the
                // real-valued output.
                let out = out.as_deref_mut().ok_or(PrimeError::MappingMismatch {
                    reason: "final stage requires an output buffer".to_string(),
                })?;
                let unit = self.output_scale / (plan.requant_shift as f32).exp2();
                out.clear();
                out.extend(merged.iter().map(|&v| {
                    let v = if plan.relu { v.max(0) } else { v };
                    v as f32 * unit
                }));
                return Ok(());
            }
            next_codes.clear();
            next_codes.extend(merged.iter().map(|&v| {
                let v = if plan.relu { v.max(0) } else { v };
                (v >> plan.requant_shift).clamp(-fwd_code_max, fwd_code_max)
            }));
            std::mem::swap(codes, next_codes);
            bank.buffer_mut().store(plan.out_addr, codes)?;
        }
        Ok(())
    }

    /// Runs one inference through a multi-bank pipelined plan serially:
    /// stage by stage, moving the activation vector between banks with
    /// [`BankController::transfer`] at each stage boundary. Allocating
    /// convenience wrapper (the batched engines in
    /// [`PrimeSystem`](crate::PrimeSystem) reuse scratches instead).
    ///
    /// # Errors
    ///
    /// Returns [`PrimeError::MappingMismatch`] if `banks` is shorter than
    /// the plan's span, or buffer/mat errors.
    pub fn infer_pipelined(
        &self,
        banks: &mut [BankController],
        input: &[f32],
    ) -> Result<Vec<f32>, PrimeError> {
        if banks.len() < self.banks_spanned() {
            return Err(PrimeError::MappingMismatch {
                reason: format!(
                    "plan spans {} banks but {} were provided",
                    self.banks_spanned(),
                    banks.len()
                ),
            });
        }
        let mut scratch = InferScratch::new();
        let mut codes = Vec::new();
        let mut out = Vec::new();
        self.quantize_input(input, &mut codes)?;
        let last = self.stage_count() - 1;
        for s in 0..=last {
            let bank_idx = self.stage_bank(s);
            if s > 0 {
                let prev = self.stage_bank(s - 1);
                let (from, words) = self.stage_output(s - 1);
                let (to, _) = self.stage_input(s);
                let (head, tail) = banks.split_at_mut(bank_idx);
                BankController::transfer(&mut head[prev], &mut tail[0], from, to, words, &mut codes)?;
            }
            let out_opt = if s == last { Some(&mut out) } else { None };
            self.run_stage_impl(
                s,
                &mut banks[bank_idx],
                NoAnalog::None,
                &mut scratch,
                &mut codes,
                out_opt,
            )?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prime_nn::FullyConnected;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn relu_net(rng: &mut SmallRng) -> Network {
        let mut net = Network::new(vec![
            Layer::Fc(FullyConnected::new(20, 12, Activation::Relu)),
            Layer::Fc(FullyConnected::new(12, 4, Activation::Identity)),
        ])
        .expect("widths match");
        net.init_random(rng);
        net
    }

    #[test]
    fn command_runner_tracks_software_outputs() {
        let mut rng = SmallRng::seed_from_u64(21);
        let net = relu_net(&mut rng);
        let input: Vec<f32> = (0..20).map(|i| ((i * 7 % 13) as f32) / 13.0).collect();
        let mut controller = BankController::new(2, 8, 4096, 8192);
        let mut runner = CommandRunner::compile(&net, &mut controller, &input).unwrap();
        let hw = runner.infer(&mut controller, &input).unwrap();
        let sw = net.forward(&input).unwrap();
        let max = sw.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(0.2);
        for (a, b) in hw.iter().zip(&sw) {
            assert!((a - b).abs() / max < 0.25, "hw {a} vs sw {b}");
        }
        assert!(runner.mats_used() >= 2);
    }

    #[test]
    fn command_runner_agrees_on_argmax_across_inputs() {
        let mut rng = SmallRng::seed_from_u64(22);
        let net = relu_net(&mut rng);
        let calib: Vec<f32> = vec![0.5; 20];
        let mut controller = BankController::new(2, 8, 4096, 8192);
        let mut runner = CommandRunner::compile(&net, &mut controller, &calib).unwrap();
        let mut agree = 0;
        let trials = 10;
        for t in 0..trials {
            let input: Vec<f32> = (0..20)
                .map(|i| (((i + t) * 11 % 17) as f32) / 17.0)
                .collect();
            let hw = runner.infer(&mut controller, &input).unwrap();
            let sw = net.forward(&input).unwrap();
            if argmax(&hw) == argmax(&sw) {
                agree += 1;
            }
        }
        assert!(
            agree >= trials - 2,
            "only {agree}/{trials} argmax agreements"
        );
    }

    #[test]
    fn command_runner_rejects_unsupported_layers() {
        let mut rng = SmallRng::seed_from_u64(23);
        let mut net = Network::new(vec![Layer::Fc(FullyConnected::new(
            8,
            4,
            Activation::Sigmoid,
        ))])
        .expect("widths match");
        net.init_random(&mut rng);
        let mut controller = BankController::new(1, 4, 1024, 1024);
        let err = CommandRunner::compile(&net, &mut controller, &[0.5; 8]);
        assert!(matches!(err, Err(PrimeError::MappingMismatch { .. })));
    }

    #[test]
    fn command_runner_respects_mat_budget() {
        let mut rng = SmallRng::seed_from_u64(24);
        // 600-input layer needs 3 row tiles; give the controller only 2 mats.
        let mut net = Network::new(vec![Layer::Fc(FullyConnected::new(
            600,
            4,
            Activation::Identity,
        ))])
        .expect("widths match");
        net.init_random(&mut rng);
        let mut controller = BankController::new(1, 2, 2048, 1024);
        let err = CommandRunner::compile(&net, &mut controller, &vec![0.5; 600]);
        assert!(matches!(err, Err(PrimeError::MappingMismatch { .. })));
    }

    #[test]
    fn inference_is_driven_by_commands() {
        let mut rng = SmallRng::seed_from_u64(25);
        let net = relu_net(&mut rng);
        let input: Vec<f32> = vec![0.4; 20];
        let mut controller = BankController::new(2, 8, 4096, 8192);
        let mut runner = CommandRunner::compile(&net, &mut controller, &input).unwrap();
        let before = controller.log().len();
        runner.infer(&mut controller, &input).unwrap();
        let issued = controller.log().len() - before;
        // At least one load per tile per layer.
        assert!(
            issued >= runner.mats_used(),
            "only {issued} commands issued"
        );
    }

    fn argmax(v: &[f32]) -> usize {
        let mut best = 0;
        for (i, &x) in v.iter().enumerate() {
            if x > v[best] {
                best = i;
            }
        }
        best
    }
}
