//! Pass 3(b) — §III-D interval precision propagation.
//!
//! Pushes per-layer value intervals through the quantizer, the crossbar
//! dot spans, and the Po output truncation of the lowered command
//! program, to statically prove that no merged sum can overflow the
//! 64-bit precision-control register before the scheme clamp fires.
//! The abstract domain is a closed signed interval over merged
//! full-precision units, computed in `i128` so the *analysis* can never
//! wrap while reasoning about whether the *machine* would.
//!
//! Two diagnostics come out of the pass:
//!
//! * [`Code::P027`] (error) — the interval cannot be proven to fit the
//!   merge register (or the requantization shift itself is out of the
//!   register's range), so the §III-D clamp could observe a wrapped
//!   value.
//! * [`Code::P028`] (warning) — the budget is vacuous: the statically
//!   possible output interval collapses to `{0}` after the declared
//!   requantization shift, so the layer provably emits constant zeros.
//!
//! Weight and cell bounds are not hard-coded: they come from the
//! device's [`MlcSpec::composed_weight_magnitude`] interval hook crossed
//! with the composing scheme's quantizer clamp, and the dot-span bound
//! from [`PairedCrossbar::sense_interval`] — the static counterparts of
//! the dynamic SA calibration.

use prime_circuits::ComposingScheme;
use prime_device::{MlcSpec, PairedCrossbar};

use crate::diag::{Code, Diagnostic, Span};
use crate::program::{ProgramLayer, ProgramOp, ProgramPlan};
use crate::verify::Target;

/// Closed signed interval `[lo, hi]`, the abstract value of the §III-D
/// precision analysis. Kept in `i128` so interval arithmetic itself is
/// exact over every value a 64-bit merge register can reach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i128,
    /// Inclusive upper bound.
    pub hi: i128,
}

impl Interval {
    /// The single value `v`.
    pub fn point(v: i128) -> Self {
        Interval { lo: v, hi: v }
    }

    /// `[-m, m]` for a magnitude bound `m`.
    pub fn symmetric(m: i128) -> Self {
        Interval { lo: -m.max(0), hi: m.max(0) }
    }

    /// Largest absolute value in the interval.
    pub fn abs_max(&self) -> i128 {
        self.lo.abs().max(self.hi.abs())
    }

    /// Least upper bound of two intervals.
    pub fn join(self, other: Interval) -> Interval {
        Interval { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }

    /// Widening join: a bound that is still growing jumps straight to
    /// the 64-bit register limit instead of creeping toward it, so the
    /// chunk-boundary fixed-point loop terminates after one unstable
    /// iteration regardless of how many window chunks a conv layer
    /// evaluates.
    pub fn widen_join(self, other: Interval) -> Interval {
        Interval {
            lo: if other.lo < self.lo { i128::from(i64::MIN) } else { self.lo },
            hi: if other.hi > self.hi { i128::from(i64::MAX) } else { self.hi },
        }
    }

    /// Interval sum.
    pub fn plus(self, other: Interval) -> Interval {
        Interval { lo: self.lo + other.lo, hi: self.hi + other.hi }
    }

    /// ReLU transfer function: clamps the lower bound at zero.
    pub fn relu(self) -> Interval {
        Interval { lo: self.lo.max(0), hi: self.hi.max(0) }
    }

    /// Arithmetic right shift of both bounds (the requantization step).
    pub fn shift_right(self, shift: u32) -> Interval {
        Interval { lo: self.lo >> shift, hi: self.hi >> shift }
    }

    /// Clamp transfer function (the scheme's emit clamp).
    pub fn clamp(self, lo: i128, hi: i128) -> Interval {
        Interval { lo: self.lo.clamp(lo, hi), hi: self.hi.clamp(lo, hi) }
    }

    /// Whether every value of the interval fits the 64-bit
    /// precision-control register the merge adder accumulates in.
    pub fn fits_register(&self) -> bool {
        self.lo >= i128::from(i64::MIN) && self.hi <= i128::from(i64::MAX)
    }
}

/// Per-layer result of the propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerInterval {
    /// Merged full-precision sums before requantization.
    pub merged: Interval,
    /// Requantized codes handed to the next layer (after ReLU, shift,
    /// and the scheme clamp).
    pub emitted: Interval,
}

/// The composed-weight magnitude bound: the MLC pair's representable
/// range ([`MlcSpec::composed_weight_magnitude`]) crossed with the
/// composing scheme's quantizer clamp — whichever is tighter governs.
pub(crate) fn weight_magnitude(target: &Target) -> i128 {
    let scheme_max = (1i128 << target.scheme.weight_bits()) - 1;
    match MlcSpec::new(target.cell_bits) {
        Ok(spec) => i128::from(spec.composed_weight_magnitude()).min(scheme_max),
        Err(_) => scheme_max,
    }
}

/// The requantization shift the runner would calibrate for a layer
/// whose merged sums peak at `out_max` — the same `bits - Pin` formula
/// `CommandRunner::requant_shift` applies, exposed so the static
/// lowering can derive plan shifts from the interval bounds.
pub fn static_shift(out_max: i128, scheme: &ComposingScheme) -> u8 {
    let out_max = i64::try_from(out_max.max(1)).unwrap_or(i64::MAX);
    let bits = 64 - i64::from(out_max.leading_zeros());
    (bits - i64::from(scheme.input_bits())).clamp(0, 63) as u8
}

/// The merged-sum interval of one weight layer (or mean pool) on input
/// codes bounded by `act`. Dot spans come through the device's
/// [`PairedCrossbar::sense_interval`] hook; a saturated span is reported
/// as an unbounded interval so the register-fit proof fails loudly
/// rather than silently.
pub(crate) fn merged_interval(layer: &ProgramLayer, act: Interval, w_max: i128) -> Interval {
    let bias = Interval::symmetric(i128::from(layer.bias_peak));
    let dot_rows = match layer.op {
        ProgramOp::Fc => Some(layer.inputs),
        ProgramOp::Conv { in_ch, kernel, .. } => Some(in_ch * kernel * kernel),
        ProgramOp::Pool { .. } => None,
    };
    match layer.op {
        ProgramOp::Fc | ProgramOp::Conv { .. } => {
            let rows = dot_rows.unwrap_or(0);
            let input_max = i64::try_from(act.abs_max()).unwrap_or(i64::MAX);
            let weight_max = i64::try_from(w_max).unwrap_or(i64::MAX);
            let (lo, hi) = PairedCrossbar::sense_interval(rows, input_max, weight_max);
            let dot = if hi == i64::MAX {
                // The sense span saturated: the true bound exceeds the
                // register, so propagate an unprovable interval.
                Interval { lo: i128::from(i64::MIN) * 2, hi: i128::from(i64::MAX) * 2 }
            } else {
                Interval { lo: i128::from(lo), hi: i128::from(hi) }
            };
            dot.plus(bias)
        }
        ProgramOp::Pool { mean, window, level, .. } => {
            if mean {
                // level * sum of n window codes.
                let n = i128::from((window * window) as u64);
                let l = i128::from(level);
                let scaled = Interval { lo: act.lo * n * l, hi: act.hi * n * l };
                Interval { lo: scaled.lo.min(scaled.hi), hi: scaled.lo.max(scaled.hi) }
            } else {
                // Winner-code max selects among existing codes.
                act
            }
        }
    }
}

/// Propagates value intervals through every layer of the plan, returning
/// the per-layer intervals alongside any P027/P028 findings.
pub fn propagate_intervals(
    target: &Target,
    plan: &ProgramPlan,
) -> (Vec<LayerInterval>, Vec<Diagnostic>) {
    let scheme = &target.scheme;
    let code_max = i128::from(scheme.input_code_max());
    let w_max = weight_magnitude(target);
    // Network inputs quantize to [0, input_code_max] (the quantizer
    // clamps below at zero).
    let mut act = Interval { lo: 0, hi: code_max };
    let mut results = Vec::with_capacity(plan.layers.len());
    let mut diags = Vec::new();
    let last = plan.layers.len().saturating_sub(1);
    for (index, layer) in plan.layers.iter().enumerate() {
        let span = Span::Layer { index, entity: layer.op.describe() };
        let per_chunk = merged_interval(layer, act, w_max);
        // Conv window chunks all apply the same weight matrix to values
        // drawn from the same activation interval, so the abstract state
        // at each chunk boundary is the widening join of the per-chunk
        // interval with itself — stable after one iteration. The loop is
        // what keeps this sound if a future schedule makes chunks
        // differ; widening caps it at one unstable step either way.
        let mut merged = per_chunk;
        loop {
            let next = merged.widen_join(per_chunk);
            if next == merged {
                break;
            }
            merged = next;
        }
        let shift = u32::from(layer.requant_shift);
        if !merged.fits_register() {
            diags.push(Diagnostic::new(
                Code::P027,
                span.clone(),
                format!(
                    "merged-sum interval [{}, {}] cannot be proven to fit the 64-bit \
                     precision-control register: the scheme clamp could observe a \
                     wrapped value",
                    merged.lo, merged.hi
                ),
            ));
        } else if shift >= 64 {
            diags.push(Diagnostic::new(
                Code::P027,
                span.clone(),
                format!(
                    "requantization shift {shift} is outside the 64-bit register \
                     (shifts of 64 or more are not defined on the merge datapath)"
                ),
            ));
        }
        // Transfer function of the emit path: ReLU, requantization
        // shift, scheme clamp. Mirror the runner's order exactly.
        let safe_shift = shift.min(63);
        let activated = if layer.relu { merged.relu() } else { merged };
        let emitted = activated.shift_right(safe_shift).clamp(-code_max, code_max);
        // A non-final layer whose possible outputs collapse to {0} from
        // a nonzero merged interval has a vacuous precision budget: the
        // declared shift discards every bit the layer computes.
        if index != last
            && merged != Interval::point(0)
            && emitted == Interval::point(0)
            && merged.fits_register()
        {
            diags.push(Diagnostic::new(
                Code::P028,
                span,
                format!(
                    "requantization shift {shift} collapses the possible output \
                     interval [{}, {}] to zero: the layer provably emits constant \
                     zeros (vacuous §III-D budget)",
                    merged.lo, merged.hi
                ),
            ));
        }
        results.push(LayerInterval { merged, emitted });
        act = emitted;
    }
    (results, diags)
}

/// Pass 3(b) entry point: just the diagnostics of
/// [`propagate_intervals`].
pub fn check_intervals(target: &Target, plan: &ProgramPlan) -> Vec<Diagnostic> {
    propagate_intervals(target, plan).1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_transfer_functions() {
        let a = Interval { lo: -8, hi: 16 };
        assert_eq!(a.relu(), Interval { lo: 0, hi: 16 });
        assert_eq!(a.shift_right(2), Interval { lo: -2, hi: 4 });
        assert_eq!(a.clamp(-3, 3), Interval { lo: -3, hi: 3 });
        assert_eq!(a.abs_max(), 16);
        assert!(a.fits_register());
    }

    #[test]
    fn widening_jumps_to_register_bounds() {
        let a = Interval { lo: 0, hi: 10 };
        let wider = Interval { lo: -1, hi: 11 };
        let w = a.widen_join(wider);
        assert_eq!(w.lo, i128::from(i64::MIN));
        assert_eq!(w.hi, i128::from(i64::MAX));
        // Joining with itself is stable.
        assert_eq!(a.widen_join(a), a);
    }

    #[test]
    fn static_shift_matches_bit_arithmetic() {
        let scheme = ComposingScheme::prime_default();
        // Peak already within Pin bits: no shift.
        assert_eq!(static_shift(3, &scheme), 0);
        // One bit over: shift by the excess.
        let over = i128::from(scheme.input_code_max()) * 4;
        assert!(static_shift(over, &scheme) > 0);
    }
}
