//! Pass 3 — abstract interpretation of the lowered command program.
//!
//! Pass 1 ([`analyze`](crate::analyze)) verifies the *mapping*; nothing
//! there sees the program the runner actually executes — the planned-op
//! stream with its row-ring staging, chunked window evaluation,
//! shared-tile aliasing, and stage-channel topology. This pass closes
//! that gap: [`analyze_program`] interprets a [`ProgramPlan`] (either
//! exported from a compiled `CommandRunner` or lowered statically by
//! [`lower_program`]) over four abstract domains:
//!
//! * **FF-buffer region dataflow** — the buffer is a word-granular
//!   region lattice; every op's staged definitions must cover its uses
//!   ([`Code::P024`]), live regions must not overlap or spill past the
//!   buffer ([`Code::P025`]), and a resident conv's row ring must never
//!   clobber a halo row the current output row still reads
//!   ([`Code::P026`]).
//! * **Interval precision propagation** (module
//!   [`intervals`](crate::intervals)) — per-layer value intervals prove
//!   the merged sums fit the precision-control register before the
//!   §III-D clamp ([`Code::P027`]) and that the declared requantization
//!   budget is not vacuous ([`Code::P028`]).
//! * **Shared-tile aliasing** — no tile reachable through a shared
//!   `PairStore` alias may still be write-armed after deploy: a
//!   program/calibrate through the alias would mutate every placement
//!   unless copy-on-write triggered ([`Code::P029`]).
//! * **Stage-channel graph** — the thread-per-stage pipeline engine is
//!   a linear chain of forward channels closed by a credit-bearing
//!   recycle edge; the chain must be exactly linear and the credits
//!   nonzero for the engine to be deadlock-free at every batch size
//!   ([`Code::P030`]).
//!
//! `PrimeSystem::deploy` gates on this pass exactly like Pass 1, and
//! `analyze_workloads --program` runs it statically over every MlBench
//! workload under both mapping strategies.

use prime_circuits::mean_pool_weights;
use prime_compiler::{pipeline_credits, MappingStrategy, NetworkMapping};
use prime_nn::{LayerSpec, NetworkSpec, PoolKind};

use crate::diag::{sort_diagnostics, Code, Diagnostic, Span};
use crate::intervals::{static_shift, Interval};
use crate::verify::{conv_staging, Target, WINDOW_IO_CHUNK_WORDS};

/// What one planned layer computes per crossbar evaluation — the
/// analysis mirror of the runner's private `PlannedOp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramOp {
    /// Fully-connected: one evaluation over the whole input vector.
    Fc,
    /// Convolution over im2col windows.
    Conv {
        /// Input channels.
        in_ch: usize,
        /// Output channels.
        out_ch: usize,
        /// Square kernel edge.
        kernel: usize,
        /// Zero padding on each side.
        padding: usize,
        /// Input height.
        in_h: usize,
        /// Input width.
        in_w: usize,
        /// Output height.
        out_h: usize,
        /// Output width.
        out_w: usize,
        /// Weight-stationary row-reuse schedule (ring + chunk resident).
        resident: bool,
        /// Output pixels evaluated per staged window chunk.
        chunk_pixels: usize,
    },
    /// Pooling on the column-mux hardware.
    Pool {
        /// Mean pooling instead of winner-code max.
        mean: bool,
        /// Channels.
        channels: usize,
        /// Input height.
        in_h: usize,
        /// Input width.
        in_w: usize,
        /// Window edge (stride = window).
        window: usize,
        /// Quantized 1/n reciprocal conductance level (mean only).
        level: i64,
    },
}

impl ProgramOp {
    /// Words of FF buffer the op's input staging region occupies — the
    /// same accounting as the runner's `PlannedLayer::staging`: the full
    /// input vector for FC, the row ring plus window chunk for a
    /// resident conv, one im2col / pooling window otherwise.
    pub fn staging_words(&self, inputs: usize) -> usize {
        match *self {
            ProgramOp::Fc => inputs,
            ProgramOp::Conv { in_ch, kernel, in_w, resident, chunk_pixels, .. } => {
                if resident {
                    kernel * in_ch * in_w + chunk_pixels * in_ch * kernel * kernel
                } else {
                    in_ch * kernel * kernel
                }
            }
            ProgramOp::Pool { window, .. } => window * window,
        }
    }

    /// Short human-readable form for diagnostic spans.
    pub fn describe(&self) -> String {
        match *self {
            ProgramOp::Fc => "fc".to_string(),
            ProgramOp::Conv { in_ch, out_ch, kernel, .. } => {
                format!("conv{kernel}x{kernel} {in_ch}-{out_ch}ch")
            }
            ProgramOp::Pool { mean, window, .. } => {
                format!("{}pool{window}x{window}", if mean { "mean" } else { "max" })
            }
        }
    }
}

/// Post-deploy state of one placed tile, as far as the alias analysis
/// needs it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgramTile {
    /// The tile's crossbar pair is reachable through a shared
    /// `PairStore` alias (its `Arc` has more than one owner).
    pub aliased: bool,
    /// The tile's mat was left in `Program` function — the next
    /// program/calibrate command would write its cells.
    pub write_armed: bool,
}

/// One layer of the lowered program.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramLayer {
    /// The op the layer executes.
    pub op: ProgramOp,
    /// Logical input vector width.
    pub inputs: usize,
    /// Logical output vector width.
    pub outputs: usize,
    /// Buffer address of the layer's staging region.
    pub in_addr: u64,
    /// Buffer address where the layer's output codes are staged (the
    /// end of its staging region).
    pub out_addr: u64,
    /// Right shift taking merged sums to next-layer codes.
    pub requant_shift: u8,
    /// ReLU before requantization.
    pub relu: bool,
    /// Largest bias magnitude, in merged full-precision units.
    pub bias_peak: i64,
    /// Post-deploy state of the layer's placed tiles.
    pub tiles: Vec<ProgramTile>,
}

/// One pipeline stage of the plan: a contiguous layer span on one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgramStage {
    /// Bank index within the plan's bank group.
    pub bank: usize,
    /// Layer span `[start, end)`.
    pub layers: (usize, usize),
}

/// The lowered command program, as the abstract interpreter sees it:
/// either exported from a compiled `CommandRunner` (deploy-time gating,
/// exact calibrated shifts and live tile states) or derived statically
/// by [`lower_program`] (workload auditing without touching a bank).
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramPlan {
    /// Planned layers, in execution order across all stages.
    pub layers: Vec<ProgramLayer>,
    /// Stage placement.
    pub stages: Vec<ProgramStage>,
    /// Capacity of each bank's FF buffer subarray, in words.
    pub buffer_words: usize,
    /// Initial credits on the pipeline engine's recycle edge.
    pub recycle_credits: usize,
}

/// Statically lowers `(spec, mapping)` into the [`ProgramPlan`] the
/// runner would compile, without programming a single mat: stage spans
/// and buffer addressing mirror `CommandRunner::compile_pipeline`
/// exactly (the cursor arithmetic depends only on shapes), and
/// requantization shifts are derived from the interval analysis's own
/// worst-case bounds instead of a calibration pass. Bias magnitudes are
/// modeled at the dot-span bound (§III-D assumes bias never dominates
/// the dot product).
///
/// # Errors
///
/// Returns a human-readable reason for layers that have no in-memory
/// lowering (LRN falls back to the host — [`Code::P015`] territory, not
/// this pass's).
pub fn lower_program(
    spec: &NetworkSpec,
    target: &Target,
    mapping: &NetworkMapping,
) -> Result<ProgramPlan, String> {
    let n_layers = spec.layers().len();
    let stages: Vec<ProgramStage> = if mapping.pipeline.is_empty() {
        vec![ProgramStage { bank: 0, layers: (0, n_layers) }]
    } else {
        let mut next = 0usize;
        mapping
            .pipeline
            .iter()
            .map(|ps| {
                let start = next;
                next += ps.layers.len();
                ProgramStage { bank: ps.bank, layers: (start, next) }
            })
            .collect()
    };
    let scheme = &target.scheme;
    let code_max = i128::from(scheme.input_code_max());
    let w_max = crate::intervals::weight_magnitude(target);
    let mut act = Interval { lo: 0, hi: code_max };
    let mut layers = Vec::with_capacity(n_layers);
    for stage in &stages {
        let mut buf_cursor = 0u64;
        for index in stage.layers.0..stage.layers.1 {
            let Some(layer_spec) = spec.layers().get(index) else {
                break; // A malformed stage span; the stage-graph check reports it.
            };
            let op = match *layer_spec {
                LayerSpec::FullyConnected { .. } => ProgramOp::Fc,
                LayerSpec::Conv { in_ch, out_ch, kernel, in_h, in_w, padding } => {
                    let (out_h, out_w) = layer_spec
                        .conv_out_dims()
                        .unwrap_or((1, 1));
                    let staging =
                        conv_staging(in_ch, kernel, in_w, out_w, target.buffer_words);
                    ProgramOp::Conv {
                        in_ch,
                        out_ch,
                        kernel,
                        padding,
                        in_h,
                        in_w,
                        out_h,
                        out_w,
                        resident: staging.resident,
                        chunk_pixels: staging.chunk_pixels,
                    }
                }
                LayerSpec::Pool { kind, channels, in_h, in_w, window } => {
                    let mean = kind == PoolKind::Mean;
                    let level = if mean {
                        mean_pool_weights(window * window, scheme.weight_half_bits())
                            .map(|w| i64::from(w[0]))
                            .unwrap_or(1)
                    } else {
                        0
                    };
                    ProgramOp::Pool { mean, channels, in_h, in_w, window, level }
                }
                LayerSpec::Lrn { .. } => {
                    return Err(format!(
                        "layer {index}: LRN has no in-memory lowering (host fallback)"
                    ));
                }
            };
            let (inputs, outputs) = (layer_spec.inputs(), layer_spec.outputs());
            let base_mats = mapping.layers.get(index).map_or(0, |l| l.base_mats);
            let mut layer = ProgramLayer {
                op,
                inputs,
                outputs,
                in_addr: buf_cursor,
                out_addr: buf_cursor + op.staging_words(inputs) as u64,
                requant_shift: 0,
                // Activations are unknown at spec level; no ReLU is the
                // sound over-approximation (wider interval).
                relu: false,
                bias_peak: 0,
                tiles: vec![
                    ProgramTile { aliased: false, write_armed: false };
                    base_mats
                ],
            };
            buf_cursor = layer.out_addr;
            // Bias bound at the dot span, then the shift the runner's
            // `bits - Pin` calibration would pick for the worst case.
            let dot = crate::intervals::merged_interval(&layer, act, w_max);
            layer.bias_peak = i64::try_from(dot.abs_max()).unwrap_or(i64::MAX);
            let merged = crate::intervals::merged_interval(&layer, act, w_max);
            let needs_shift = !matches!(op, ProgramOp::Pool { mean: false, .. });
            if needs_shift {
                layer.requant_shift = static_shift(merged.abs_max(), scheme);
            }
            act = merged
                .shift_right(u32::from(layer.requant_shift).min(63))
                .clamp(-code_max, code_max);
            layers.push(layer);
        }
    }
    let credits = pipeline_credits(stages.len());
    Ok(ProgramPlan { layers, stages, buffer_words: target.buffer_words, recycle_credits: credits })
}

/// Pass 3(a): word-granular FF-buffer region dataflow.
fn check_regions(plan: &ProgramPlan) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let cap = plan.buffer_words as u64;
    for stage in &plan.stages {
        let span_end = stage.layers.1.min(plan.layers.len());
        let layers = &plan.layers[stage.layers.0.min(span_end)..span_end];
        // (start, end, layer index) of every staging window in the stage.
        let mut windows: Vec<(u64, u64, usize)> = Vec::with_capacity(layers.len());
        for (off, layer) in layers.iter().enumerate() {
            let index = stage.layers.0 + off;
            let span = Span::Layer { index, entity: layer.op.describe() };
            let required = layer.op.staging_words(layer.inputs) as u64;
            let declared = layer.out_addr.saturating_sub(layer.in_addr);
            if layer.out_addr < layer.in_addr || declared < required {
                diags.push(Diagnostic::new(
                    Code::P024,
                    span.clone(),
                    format!(
                        "op reads {required} staged words at {} but only {declared} \
                         are defined before use",
                        layer.in_addr
                    ),
                ));
            }
            if layer.in_addr + required > cap {
                diags.push(Diagnostic::new(
                    Code::P025,
                    span.clone(),
                    format!(
                        "staging region [{}, {}) spills past the {cap}-word FF buffer",
                        layer.in_addr,
                        layer.in_addr + required
                    ),
                ));
            }
            // Live output writes: FC stores its full output vector at
            // out_addr after every evaluation; conv/pool feature maps
            // stay Mem-resident and only the stage-boundary bursts
            // touch the buffer.
            let is_stage_last = off + 1 == layers.len();
            let out_words = match layer.op {
                ProgramOp::Fc => layer.outputs as u64,
                _ if is_stage_last => {
                    layer.outputs.clamp(1, WINDOW_IO_CHUNK_WORDS) as u64
                }
                _ => 0,
            };
            if out_words > 0 && layer.out_addr + out_words > cap {
                diags.push(Diagnostic::new(
                    Code::P025,
                    span.clone(),
                    format!(
                        "live output write [{}, {}) spills past the {cap}-word FF buffer",
                        layer.out_addr,
                        layer.out_addr + out_words
                    ),
                ));
            }
            // Overlap against every earlier staging window in the stage:
            // the cursor invariant makes them pairwise disjoint, so any
            // intersection means two live regions share words.
            let start = layer.in_addr;
            let end = layer.in_addr + required;
            for &(s0, e0, other) in &windows {
                if start < e0 && s0 < end {
                    diags.push(Diagnostic::new(
                        Code::P025,
                        span.clone(),
                        format!(
                            "staging region [{start}, {end}) overlaps layer {other}'s \
                             live region [{s0}, {e0})"
                        ),
                    ));
                }
            }
            windows.push((start, end, index));
            // Resident-conv ring schedule: must match the shared
            // `conv_staging` contract, or staging row `iy` into slot
            // `iy % kernel` clobbers a halo row the current output row
            // still gathers from.
            if let ProgramOp::Conv {
                in_ch,
                kernel,
                in_w,
                out_w,
                resident,
                chunk_pixels,
                ..
            } = layer.op
            {
                let cs = conv_staging(in_ch, kernel, in_w, out_w, plan.buffer_words);
                let contract_chunk = if cs.resident { cs.chunk_pixels } else { 1 };
                if resident != cs.resident || chunk_pixels != contract_chunk {
                    diags.push(Diagnostic::new(
                        Code::P026,
                        span.clone(),
                        format!(
                            "ring schedule (resident={resident}, chunk_pixels=\
                             {chunk_pixels}) deviates from the conv_staging contract \
                             (resident={}, chunk_pixels={contract_chunk}): a halo row \
                             still read by the current output row would be clobbered \
                             or the ring overruns its residency budget",
                            cs.resident
                        ),
                    ));
                }
                if resident {
                    let slot_w = (in_ch * in_w) as u64;
                    let chunk_words = (chunk_pixels * in_ch * kernel * kernel) as u64;
                    let ring_avail = declared.saturating_sub(chunk_words);
                    let slots = ring_avail.checked_div(slot_w).unwrap_or(0);
                    if chunk_pixels == 0 || slots < kernel as u64 {
                        diags.push(Diagnostic::new(
                            Code::P026,
                            span,
                            format!(
                                "declared staging window holds {slots} ring slot(s) \
                                 but the schedule keys rows by `iy % {kernel}`: a \
                                 still-live halo row shares a slot with a newer row"
                            ),
                        ));
                    }
                }
            }
        }
    }
    diags
}

/// Pass 3(c): shared-tile write-after-alias proof.
fn check_aliasing(plan: &ProgramPlan, mapping: &NetworkMapping) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (index, layer) in plan.layers.iter().enumerate() {
        let armed_aliased =
            layer.tiles.iter().filter(|t| t.aliased && t.write_armed).count();
        if armed_aliased > 0 {
            let refs = mapping.layers.get(index).map_or(1, |l| l.tile_refs.max(1));
            let strategy = mapping
                .layers
                .get(index)
                .map_or(MappingStrategy::ReplicateDense, |l| l.strategy);
            diags.push(Diagnostic::new(
                Code::P029,
                Span::Layer { index, entity: layer.op.describe() },
                format!(
                    "{armed_aliased} tile(s) left write-armed (Program function) while \
                     their pair is shared ({} layout, {refs} placement(s) per tile): a \
                     program/calibrate would write through the alias — copy-on-write \
                     has not triggered",
                    strategy.name()
                ),
            ));
        }
    }
    diags
}

/// Pass 3(d): stage-channel graph deadlock/stall check. The engine's
/// channel graph is a linear chain of forward edges (one per stage
/// boundary, unbounded) closed by a recycle edge carrying
/// `recycle_credits` initial tokens from the final stage back to stage
/// 0. That graph is deadlock-free for every batch size iff the chain is
/// exactly linear — contiguous layer spans on strictly increasing banks
/// (a duplicate bank leaves a stage with no thread, so its channel
/// never drains) — and at least one credit exists to admit the first
/// packet.
fn check_stage_graph(plan: &ProgramPlan) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if plan.stages.is_empty() {
        diags.push(Diagnostic::new(
            Code::P030,
            Span::Network,
            "plan has no stages: the channel chain is empty and no packet can flow",
        ));
        return diags;
    }
    let mut expected = 0usize;
    let mut prev_bank: Option<usize> = None;
    for (index, stage) in plan.stages.iter().enumerate() {
        let span = Span::Stage { index, bank: stage.bank };
        if stage.layers.1 <= stage.layers.0 {
            diags.push(Diagnostic::new(
                Code::P030,
                span.clone(),
                format!(
                    "empty layer span [{}, {}): the stage thread would forward \
                     nothing and the chain stalls",
                    stage.layers.0, stage.layers.1
                ),
            ));
        }
        if stage.layers.0 != expected {
            diags.push(Diagnostic::new(
                Code::P030,
                span.clone(),
                format!(
                    "layer span starts at {} but the previous stage ended at \
                     {expected}: the forward channel chain is broken",
                    stage.layers.0
                ),
            ));
        }
        expected = stage.layers.1.max(expected);
        if let Some(prev) = prev_bank {
            if stage.bank <= prev {
                diags.push(Diagnostic::new(
                    Code::P030,
                    span,
                    format!(
                        "bank {} does not increase over the previous stage's bank \
                         {prev}: the duplicate stage gets no thread and its channel \
                         never drains",
                        stage.bank
                    ),
                ));
            }
        }
        prev_bank = Some(stage.bank);
    }
    if expected != plan.layers.len() {
        diags.push(Diagnostic::new(
            Code::P030,
            Span::Network,
            format!(
                "stages cover {expected} of {} layers: packets reaching the final \
                 stage would carry an unfinished activation",
                plan.layers.len()
            ),
        ));
    }
    if plan.stages.len() > 1 && plan.recycle_credits == 0 {
        diags.push(Diagnostic::new(
            Code::P030,
            Span::Network,
            "recycle edge carries zero credits: stage 0 blocks on recv before the \
             final stage can ever feed the recycle channel — deadlock on the first \
             packet",
        ));
    }
    diags
}

/// Pass 3 entry point: abstractly interprets the lowered command
/// program `plan` against the `spec`/`target`/`mapping` it was compiled
/// from, running the four sub-analyses (region dataflow, interval
/// precision, shared-tile aliasing, stage-graph deadlock freedom).
/// Diagnostics come back in the canonical deterministic order.
pub fn analyze_program(
    spec: &NetworkSpec,
    target: &Target,
    mapping: &NetworkMapping,
    plan: &ProgramPlan,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if plan.layers.len() != spec.layers().len() {
        diags.push(Diagnostic::new(
            Code::P001,
            Span::Network,
            format!(
                "plan has {} layers but the spec has {}",
                plan.layers.len(),
                spec.layers().len()
            ),
        ));
    }
    diags.extend(check_regions(plan));
    diags.extend(crate::intervals::check_intervals(target, plan));
    diags.extend(check_aliasing(plan, mapping));
    diags.extend(check_stage_graph(plan));
    sort_diagnostics(&mut diags);
    diags
}
