//! Pass 2 — the repo-specific source lint.
//!
//! A line/token-level scanner (no external parser: the container is
//! offline) that enforces the repo's coding discipline:
//!
//! * [`Code::P050`] — no allocation (`Vec::new`, `vec!`, `.collect`,
//!   `.to_vec`, `.clone()`) inside `*_into` hot-kernel functions;
//! * [`Code::P051`] — no `unwrap()` / `expect()` / `panic!` /
//!   `unreachable!` / `todo!` / `unimplemented!` in non-test code of
//!   library crates;
//! * [`Code::P052`] — no `unsafe` anywhere in first-party code;
//! * [`Code::P054`] — no lossy `as` casts to narrow integer types inside
//!   `*_into` hot kernels or anywhere in the analog datapath
//!   (`crates/prime-device/src`): a silent truncation there corrupts
//!   codes/levels without tripping any range check. Use
//!   `try_from`/`from` or mask explicitly (`& 0x..`) on the same
//!   expression so the intended width is visible.
//!
//! Residual violations (documented constructor panics, etc.) live in the
//! `prime-lint.allow` file at the repo root: one entry per line,
//! `CODE path function  # reason`, where `function` may be `*`. Entries
//! that match nothing are reported as [`Code::P053`] warnings so the
//! allowlist can only shrink.
//!
//! The scanner strips line/block/doc comments and string literals with a
//! small state machine, tracks brace depth to know the enclosing function
//! and whether it is inside a `#[cfg(test)]` scope, and then looks for
//! the banned token patterns on the stripped text.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::diag::{Code, Diagnostic, Span};

/// One allowlist entry: `CODE path function`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Diagnostic code the entry silences (e.g. `"P051"`).
    pub code: String,
    /// Repo-relative file path the entry applies to.
    pub path: String,
    /// Function name the entry applies to, or `"*"` for the whole file.
    pub function: String,
    /// One-based line in the allowlist file (for P053 reporting).
    pub line: usize,
}

/// Parsed allowlist with usage tracking.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
    used: Vec<bool>,
}

impl Allowlist {
    /// Parses the `prime-lint.allow` format: blank lines and `#` comments
    /// ignored; otherwise `CODE path function` separated by whitespace,
    /// with anything after `#` treated as a reason comment.
    pub fn parse(text: &str) -> Allowlist {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            if let (Some(code), Some(path), Some(function)) =
                (parts.next(), parts.next(), parts.next())
            {
                entries.push(AllowEntry {
                    code: code.to_string(),
                    path: path.to_string(),
                    function: function.to_string(),
                    line: idx + 1,
                });
            }
        }
        let used = vec![false; entries.len()];
        Allowlist { entries, used }
    }

    /// Loads the allowlist from a file; a missing file is an empty list.
    pub fn load(path: &Path) -> Allowlist {
        match fs::read_to_string(path) {
            Ok(text) => Allowlist::parse(&text),
            Err(_) => Allowlist::default(),
        }
    }

    /// Whether `(code, path, function)` is allowlisted; marks the entry used.
    pub fn permits(&mut self, code: Code, path: &str, function: &str) -> bool {
        let mut hit = false;
        for (entry, used) in self.entries.iter().zip(self.used.iter_mut()) {
            if entry.code == code.as_str()
                && entry.path == path
                && (entry.function == "*" || entry.function == function)
            {
                *used = true;
                hit = true;
            }
        }
        hit
    }

    /// Entries that never matched a finding.
    pub fn unused(&self) -> Vec<&AllowEntry> {
        self.entries
            .iter()
            .zip(self.used.iter())
            .filter_map(|(e, &u)| if u { None } else { Some(e) })
            .collect()
    }
}

/// How a file participates in the lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FileClass {
    /// Library source: all three rules apply.
    Library,
    /// Binaries, tests, benches, examples: only the `unsafe` rule applies.
    Support,
}

fn classify(rel: &str) -> Option<FileClass> {
    if rel.starts_with("vendor/") || rel.starts_with("target/") || rel.starts_with(".git/") {
        return None;
    }
    if !rel.ends_with(".rs") {
        return None;
    }
    let support = rel.contains("/tests/")
        || rel.starts_with("tests/")
        || rel.contains("/benches/")
        || rel.starts_with("benches/")
        || rel.contains("/examples/")
        || rel.starts_with("examples/")
        || rel.contains("/src/bin/");
    if support {
        return Some(FileClass::Support);
    }
    let library = rel.starts_with("src/")
        || (rel.starts_with("crates/") && rel.contains("/src/"));
    if library { Some(FileClass::Library) } else { Some(FileClass::Support) }
}

fn collect_rust_files(root: &Path, dir: &Path, out: &mut Vec<(PathBuf, String)>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name == ".git" || name == "node_modules" {
                continue;
            }
            collect_rust_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((path, rel));
        }
    }
    Ok(())
}

/// Carry-over lexical state between lines of one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LexState {
    Code,
    BlockComment(u32),
    Str,
    RawStr(u8),
}

/// One brace scope.
#[derive(Debug, Clone)]
struct Scope {
    test: bool,
    fn_name: Option<String>,
}

/// Item declaration seen but whose `{` has not arrived yet.
#[derive(Debug, Clone)]
struct Pending {
    fn_name: Option<String>,
    test: bool,
}

struct FileScanner<'a> {
    rel: String,
    class: FileClass,
    lex: LexState,
    scopes: Vec<Scope>,
    pending: Option<Pending>,
    pending_test_attr: bool,
    allow: &'a mut Allowlist,
    diags: Vec<Diagnostic>,
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Replaces comments and string/char literal contents with spaces,
/// keeping the line length stable so columns still line up. Returns the
/// stripped text and the lexical state at end of line.
fn strip_line(line: &str, mut state: LexState) -> (String, LexState) {
    let chars: Vec<char> = line.chars().collect();
    let mut out: Vec<char> = Vec::with_capacity(chars.len());
    let mut i = 0usize;
    while i < chars.len() {
        match state {
            LexState::BlockComment(depth) => {
                if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    state = if depth <= 1 {
                        LexState::Code
                    } else {
                        LexState::BlockComment(depth - 1)
                    };
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    state = LexState::BlockComment(depth + 1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            LexState::Str => {
                if chars[i] == '\\' {
                    out.push(' ');
                    if i + 1 < chars.len() {
                        out.push(' ');
                    }
                    i += 2;
                } else if chars[i] == '"' {
                    state = LexState::Code;
                    out.push('"');
                    i += 1;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            LexState::RawStr(hashes) => {
                if chars[i] == '"' {
                    let n = hashes as usize;
                    let closes = (1..=n).all(|k| chars.get(i + k) == Some(&'#'));
                    if closes {
                        state = LexState::Code;
                        out.push('"');
                        out.extend(std::iter::repeat_n(' ', n));
                        i += 1 + n;
                        continue;
                    }
                }
                out.push(' ');
                i += 1;
            }
            LexState::Code => {
                let c = chars[i];
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    // Line (or doc) comment: drop the rest of the line.
                    break;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = LexState::BlockComment(1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                if c == 'r'
                    && (i == 0 || !is_ident_char(chars[i - 1]))
                    && matches!(chars.get(i + 1), Some(&'"') | Some(&'#'))
                {
                    // Possible raw string r"..." or r#"..."#.
                    let mut j = i + 1;
                    let mut hashes = 0u8;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        state = LexState::RawStr(hashes);
                        out.extend(std::iter::repeat_n(' ', j - i));
                        out.push('"');
                        i = j + 1;
                        continue;
                    }
                }
                if c == '"' {
                    state = LexState::Str;
                    out.push('"');
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    // Char literal vs lifetime: a literal closes with a
                    // quote one or two (escaped) chars later.
                    if chars.get(i + 1) == Some(&'\\') {
                        // Escaped char literal: skip to the closing quote.
                        let mut j = i + 2;
                        while j < chars.len() && chars[j] != '\'' {
                            j += 1;
                        }
                        out.extend(std::iter::repeat_n(' ', j.min(chars.len() - 1) + 1 - i));
                        i = j + 1;
                        continue;
                    }
                    if chars.get(i + 2) == Some(&'\'') {
                        out.push(' ');
                        out.push(' ');
                        out.push(' ');
                        i += 3;
                        continue;
                    }
                    // Lifetime: keep scanning.
                    out.push('\'');
                    i += 1;
                    continue;
                }
                out.push(c);
                i += 1;
            }
        }
    }
    (out.into_iter().collect(), state)
}

/// Finds `needle` in `hay` at word-ish boundaries: the char before the
/// match must not be an identifier char (so `.unwrap()` never matches
/// inside `unwrap_or`, and `unsafe` never matches `unsafe_code`), and if
/// `whole_word`, the char after must not be an identifier char either.
fn find_token(hay: &str, needle: &str, whole_word: bool) -> bool {
    let needs_before = needle.chars().next().is_some_and(is_ident_char);
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let abs = start + pos;
        let before_ok = !needs_before
            || abs == 0
            || !is_ident_char(hay[..abs].chars().next_back().unwrap_or(' '));
        let end = abs + needle.len();
        let after_ok =
            !whole_word || end >= hay.len() || !is_ident_char(hay[end..].chars().next().unwrap_or(' '));
        if before_ok && after_ok {
            return true;
        }
        start = abs + needle.len().max(1);
    }
    false
}

impl FileScanner<'_> {
    fn current_fn(&self) -> &str {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.fn_name.as_deref())
            .unwrap_or("-")
    }

    fn in_test(&self) -> bool {
        self.scopes.iter().any(|s| s.test)
    }

    fn report(&mut self, code: Code, line_no: usize, message: String) {
        let function = self.current_fn().to_string();
        if self.allow.permits(code, &self.rel, &function) {
            return;
        }
        self.diags.push(Diagnostic::new(
            code,
            Span::Source { file: self.rel.clone(), line: line_no, function },
            message,
        ));
    }

    fn scan_line(&mut self, raw: &str, line_no: usize) {
        let (stripped, next_state) = strip_line(raw, self.lex);
        self.lex = next_state;
        let text = stripped.as_str();

        // Attributes that mark the next item (and its scope) as test-only.
        if text.contains("#[cfg(test)]")
            || text.contains("#[cfg(all(test")
            || text.contains("#[test]")
        {
            self.pending_test_attr = true;
        }

        // Item declarations whose body brace may come later.
        if let Some(name) = extract_decl_name(text, "fn ") {
            self.pending = Some(Pending {
                fn_name: Some(name),
                test: self.pending_test_attr,
            });
            self.pending_test_attr = false;
        } else if self.pending.is_none()
            && (extract_decl_name(text, "mod ").is_some()
                || find_token(text, "impl", true)
                || extract_decl_name(text, "struct ").is_some()
                || extract_decl_name(text, "enum ").is_some()
                || extract_decl_name(text, "trait ").is_some())
        {
            self.pending = Some(Pending { fn_name: None, test: self.pending_test_attr });
            self.pending_test_attr = false;
        }

        // Rules run before brace processing so a one-line fn body still
        // attributes findings to that fn via `pending` resolution below;
        // in practice bodies open on the declaration line, so process
        // braces first, then apply the rules with the updated scope.
        for c in text.chars() {
            match c {
                '{' => {
                    let pending = self.pending.take();
                    let inherited = self.in_test();
                    match pending {
                        Some(p) => self.scopes.push(Scope {
                            test: inherited || p.test,
                            fn_name: p.fn_name,
                        }),
                        None => self.scopes.push(Scope { test: inherited, fn_name: None }),
                    }
                }
                '}' => {
                    self.scopes.pop();
                }
                // An item ended without a body (`fn f();` in traits,
                // `mod x;`, `struct X;`): drop the pending decl and any
                // test attribute that was aimed at it.
                ';' if self.scopes.iter().all(|s| s.fn_name.is_none()) => {
                    self.pending = None;
                    self.pending_test_attr = false;
                }
                _ => {}
            }
        }

        // P052: unsafe anywhere, any file class, test or not.
        if find_token(text, "unsafe", true) {
            self.report(
                Code::P052,
                line_no,
                "`unsafe` is forbidden in first-party code".to_string(),
            );
        }

        if self.class != FileClass::Library || self.in_test() {
            return;
        }

        // P051: panic paths in non-test library code.
        for (pattern, whole, label) in [
            (".unwrap()", false, "unwrap()"),
            (".expect(", false, "expect()"),
            ("panic!", true, "panic!"),
            ("unreachable!", true, "unreachable!"),
            ("todo!", true, "todo!"),
            ("unimplemented!", true, "unimplemented!"),
        ] {
            if find_token(text, pattern, whole) {
                self.report(
                    Code::P051,
                    line_no,
                    format!("`{label}` in non-test library code; return a typed error instead"),
                );
            }
        }

        // P054: lossy `as` casts to narrow integer types in the guarded
        // datapath — *_into hot kernels anywhere, every library function
        // of the analog device crate. A mask on the same line (`& 0x..`)
        // documents the intended truncation and is accepted.
        let in_hot_kernel = self.current_fn().ends_with("_into");
        let in_analog_datapath = self.rel.starts_with("crates/prime-device/src/");
        if (in_hot_kernel || in_analog_datapath) && !text.contains("& 0x") {
            for target in ["as u8", "as u16", "as u32", "as i8", "as i16", "as i32"] {
                if find_token(text, target, true) {
                    self.report(
                        Code::P054,
                        line_no,
                        format!(
                            "lossy `{target}` cast in the guarded datapath; use \
                             `try_from`/`from` or mask explicitly"
                        ),
                    );
                }
            }
        }

        // P050: allocation inside *_into hot kernels.
        if in_hot_kernel {
            for (pattern, whole, label) in [
                ("Vec::new", false, "Vec::new"),
                ("vec!", true, "vec!"),
                (".collect", false, "collect"),
                (".to_vec", false, "to_vec"),
                (".clone()", false, "clone()"),
                ("String::new", false, "String::new"),
                (".to_string", false, "to_string"),
                ("format!", true, "format!"),
                ("Box::new", false, "Box::new"),
            ] {
                if find_token(text, pattern, whole) {
                    self.report(
                        Code::P050,
                        line_no,
                        format!(
                            "`{label}` allocates inside hot kernel `{}`; *_into functions \
                             must be allocation-free",
                            self.current_fn()
                        ),
                    );
                }
            }
        }
    }
}

/// Extracts the identifier following `keyword` (e.g. `"fn "`) when the
/// keyword appears at a word boundary; returns `None` for keyword-less
/// lines and for function-pointer types (`fn(` with no name).
fn extract_decl_name(text: &str, keyword: &str) -> Option<String> {
    let mut start = 0;
    while let Some(pos) = text[start..].find(keyword) {
        let abs = start + pos;
        let before_ok =
            abs == 0 || !is_ident_char(text[..abs].chars().next_back().unwrap_or(' '));
        if before_ok {
            let rest = &text[abs + keyword.len()..];
            let name: String = rest
                .trim_start()
                .chars()
                .take_while(|&c| is_ident_char(c))
                .collect();
            if !name.is_empty() {
                return Some(name);
            }
        }
        start = abs + keyword.len();
    }
    None
}

/// Lints one file's contents (exposed for tests).
pub fn lint_source(rel: &str, text: &str, allow: &mut Allowlist) -> Vec<Diagnostic> {
    let class = match classify(rel) {
        Some(c) => c,
        None => return Vec::new(),
    };
    let mut scanner = FileScanner {
        rel: rel.to_string(),
        class,
        lex: LexState::Code,
        scopes: Vec::new(),
        pending: None,
        pending_test_attr: false,
        allow,
        diags: Vec::new(),
    };
    for (idx, line) in text.lines().enumerate() {
        scanner.scan_line(line, idx + 1);
    }
    scanner.diags
}

/// Lints every first-party `.rs` file under `root`, consults and updates
/// the allowlist, and appends a [`Code::P053`] warning for each unused
/// allowlist entry.
///
/// # Errors
///
/// Returns an [`io::Error`] if the tree cannot be walked or a file read.
pub fn lint_root(root: &Path, allow: &mut Allowlist) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    collect_rust_files(root, root, &mut files)?;
    files.sort();
    let mut diags = Vec::new();
    for (path, rel) in files {
        let text = fs::read_to_string(&path)?;
        diags.extend(lint_source(&rel, &text, allow));
    }
    for entry in allow.unused() {
        diags.push(Diagnostic::new(
            Code::P053,
            Span::Source {
                file: "prime-lint.allow".to_string(),
                line: entry.line,
                function: "-".to_string(),
            },
            format!(
                "allowlist entry `{} {} {}` matched nothing; remove it",
                entry.code, entry.path, entry.function
            ),
        ));
    }
    crate::diag::sort_diagnostics(&mut diags);
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(rel: &str, text: &str) -> Vec<Diagnostic> {
        let mut allow = Allowlist::default();
        lint_source(rel, text, &mut allow)
    }

    #[test]
    fn flags_lossy_cast_in_guarded_datapath() {
        // The analog device crate is covered file-wide.
        let src = "pub fn f(x: u32) -> u16 {\n    x as u16\n}\n";
        let diags = lint("crates/prime-device/src/foo.rs", src);
        assert!(diags.iter().any(|d| d.code == Code::P054), "{diags:?}");
        // An explicit mask documents the truncation and is accepted.
        let masked = "pub fn f(x: u32) -> u16 {\n    (x & 0xFFFF) as u16\n}\n";
        assert!(lint("crates/prime-device/src/foo.rs", masked).is_empty());
        // Hot `*_into` kernels are covered in every library crate.
        let hot = "pub fn f_into(x: u32) -> u16 {\n    x as u16\n}\n";
        let diags = lint("crates/demo/src/lib.rs", hot);
        assert!(diags.iter().any(|d| d.code == Code::P054), "{diags:?}");
        // Ordinary library code elsewhere is not.
        assert!(lint("crates/demo/src/lib.rs", src).is_empty());
    }

    #[test]
    fn flags_unwrap_in_library_code() {
        let src = "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
        let diags = lint("crates/demo/src/lib.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::P051);
        match &diags[0].span {
            Span::Source { line, function, .. } => {
                assert_eq!(*line, 2);
                assert_eq!(function, "f");
            }
            other => panic!("wrong span {other:?}"),
        }
    }

    #[test]
    fn ignores_test_modules_and_doc_comments() {
        let src = "\
//! `unwrap()` in docs is fine.\n\
/// Also `panic!` here.\n\
pub fn ok() {}\n\
#[cfg(test)]\n\
mod tests {\n\
    #[test]\n\
    fn t() {\n\
        Some(1).unwrap();\n\
        panic!(\"fine in tests\");\n\
    }\n\
}\n";
        let diags = lint("crates/demo/src/lib.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn ignores_strings_and_comments() {
        let src = "pub fn f() -> &'static str {\n    // a panic! in a comment\n    \"call unwrap() later\"\n}\n";
        let diags = lint("crates/demo/src/lib.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let src = "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap_or_else(|| 0)\n}\n";
        let diags = lint("crates/demo/src/lib.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn flags_alloc_in_into_kernels_only() {
        let src = "\
pub fn gather(xs: &[u8]) -> Vec<u8> {\n\
    xs.iter().copied().collect()\n\
}\n\
pub fn gather_into(xs: &[u8], out: &mut Vec<u8>) {\n\
    let v = xs.to_vec();\n\
    out.extend_from_slice(&v);\n\
}\n";
        let diags = lint("crates/demo/src/kernels.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::P050);
        match &diags[0].span {
            Span::Source { function, .. } => assert_eq!(function, "gather_into"),
            other => panic!("wrong span {other:?}"),
        }
    }

    #[test]
    fn flags_unsafe_everywhere_even_tests() {
        let src = "#[test]\nfn t() {\n    unsafe { std::hint::unreachable_unchecked() }\n}\n";
        let diags = lint("crates/demo/tests/t.rs", src);
        assert!(diags.iter().any(|d| d.code == Code::P052), "{diags:?}");
        // forbid(unsafe_code) attribute does not trip the word check.
        let attr = "#![forbid(unsafe_code)]\n";
        assert!(lint("crates/demo/src/lib.rs", attr).is_empty());
    }

    #[test]
    fn test_files_and_bins_skip_panic_rule() {
        let src = "fn main() {\n    std::fs::read(\"x\").unwrap();\n}\n";
        assert!(lint("crates/demo/src/bin/tool.rs", src).is_empty());
        assert!(lint("crates/demo/tests/integration.rs", src).is_empty());
        assert!(lint("examples/demo.rs", src).is_empty());
        assert!(lint("crates/demo/benches/b.rs", src).is_empty());
    }

    #[test]
    fn vendor_is_skipped() {
        let src = "pub fn f() { panic!() }\n";
        assert!(lint("vendor/rand/src/lib.rs", src).is_empty());
    }

    #[test]
    fn allowlist_silences_and_tracks_usage() {
        let mut allow =
            Allowlist::parse("P051 crates/demo/src/lib.rs f # documented panic\nP051 crates/demo/src/lib.rs ghost\n");
        let src = "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
        let diags = lint_source("crates/demo/src/lib.rs", src, &mut allow);
        assert!(diags.is_empty(), "{diags:?}");
        let unused = allow.unused();
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].function, "ghost");
    }

    #[test]
    fn multiline_signatures_attribute_to_the_right_fn() {
        let src = "\
pub fn long_sig(\n\
    x: Option<u8>,\n\
) -> u8 {\n\
    x.unwrap()\n\
}\n";
        let diags = lint("crates/demo/src/lib.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        match &diags[0].span {
            Span::Source { function, line, .. } => {
                assert_eq!(function, "long_sig");
                assert_eq!(*line, 4);
            }
            other => panic!("wrong span {other:?}"),
        }
    }

    #[test]
    fn multiline_strings_stay_stripped() {
        let src = "pub fn f() -> String {\n    let s = \"spans \\\n        unwrap() lines\";\n    s.into()\n}\n";
        let diags = lint("crates/demo/src/lib.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn block_comments_can_nest() {
        let src = "/* outer /* inner panic! */ still comment unwrap() */\npub fn f() {}\n";
        let diags = lint("crates/demo/src/lib.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn char_literal_is_not_a_lifetime() {
        let src = "pub fn f() -> char {\n    let c = '\"';\n    let s = \"panic!\";\n    let _ = s;\n    c\n}\n";
        let diags = lint("crates/demo/src/lib.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
