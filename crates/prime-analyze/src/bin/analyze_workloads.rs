//! Analyzer self-check: runs the deployment verifier over every MlBench
//! workload against the paper's default target, under every mapping
//! strategy.
//!
//! CI runs this to guarantee the verifier never regresses into rejecting
//! the paper's own benchmark suite — including full-size VGG-D under both
//! the replicate-dense and shared-kernel layouts. Exits nonzero if any
//! workload fails to map or draws an `Error`-severity diagnostic.
//!
//! ```text
//! analyze-workloads [--json]
//! ```

use std::process::ExitCode;

use prime_analyze::{analyze, has_errors, render_human, render_json, Severity, Target};
use prime_compiler::{map_network, CompileOptions, MappingStrategy};
use prime_nn::MlBench;

const STRATEGIES: [MappingStrategy; 2] =
    [MappingStrategy::ReplicateDense, MappingStrategy::SharedKernel];

fn main() -> ExitCode {
    let json = std::env::args().skip(1).any(|a| a == "--json");
    let target = Target::prime_default();
    let mut failed = false;
    for strategy in STRATEGIES {
        // Deployment semantics: `PrimeSystem::deploy` maps without
        // replication (replicas get placed at deploy time); the replicated
        // mapping is an analytic utilization model, not a physical
        // placement. Tile sharing still engages for bank-parallel
        // workloads because whole-network copies alone alias every tile.
        let options = CompileOptions { replicate: false, strategy };
        for bench in MlBench::ALL {
            let spec = bench.spec();
            let mapping = match map_network(&spec, &target.hw, options) {
                Ok(mapping) => mapping,
                Err(err) => {
                    eprintln!(
                        "{} [{}]: mapping failed: {err}",
                        bench.name(),
                        strategy.name()
                    );
                    failed = true;
                    continue;
                }
            };
            let diags = analyze(&spec, &target, &mapping);
            let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
            let warnings =
                diags.iter().filter(|d| d.severity == Severity::Warning).count();
            if json {
                println!(
                    "{{\"workload\":\"{}\",\"strategy\":\"{}\",\"diagnostics\":{}}}",
                    bench.name(),
                    strategy.name(),
                    render_json(&diags)
                );
            } else {
                println!(
                    "{:8} {:16} {:24} errors={errors} warnings={warnings}",
                    bench.name(),
                    strategy.name(),
                    bench.topology()
                );
                if errors > 0 {
                    print!("{}", render_human(&diags));
                }
            }
            if has_errors(&diags) {
                failed = true;
            }
        }
    }
    if failed {
        eprintln!("analyze-workloads: FAILED");
        ExitCode::FAILURE
    } else {
        println!("analyze-workloads: all workloads accepted");
        ExitCode::SUCCESS
    }
}
