//! Analyzer self-check: runs the deployment verifier over every MlBench
//! workload against the paper's default target, under every mapping
//! strategy.
//!
//! CI runs this to guarantee the verifier never regresses into rejecting
//! the paper's own benchmark suite — including full-size VGG-D under both
//! the replicate-dense and shared-kernel layouts. Exits nonzero if any
//! workload fails to map or draws an `Error`-severity diagnostic.
//!
//! With `--program`, additionally lowers each workload's command program
//! statically ([`lower_program`]) and runs the Pass-3 abstract
//! interpreter ([`analyze_program`]) over it — region dataflow, interval
//! precision, shared-tile aliasing, stage-graph deadlock freedom — and
//! fails on any `Warning`-or-worse finding (stricter than Pass 1's
//! error-only gate: the paper's own workloads must be warning-clean).
//! Workloads with no in-memory lowering (LRN host fallback) are reported
//! and skipped.
//!
//! With `--candidates`, verifies the *entire enumerated candidate space*
//! the mapping search scores ([`prime_compiler::enumerate_candidates`])
//! instead of the two fixed strategies: every candidate must either pass
//! Pass 1 (and Pass 3 where a lowering exists) or fail to map with a
//! typed compile error — the search driver prunes those — and the
//! fixed-default candidate must always be verifier-clean, because it is
//! the search's tie-break anchor. Since the searched mapping is by
//! construction one of these candidates, a clean candidate sweep
//! subsumes verifying whatever the search picks.
//!
//! ```text
//! analyze-workloads [--json] [--program] [--candidates]
//! ```

use std::process::ExitCode;

use prime_analyze::{
    analyze, analyze_program, has_errors, lower_program, render_human, render_json,
    Severity, Target,
};
use prime_compiler::{enumerate_candidates, map_network, CompileOptions, MappingStrategy};
use prime_nn::MlBench;

const STRATEGIES: [MappingStrategy; 2] =
    [MappingStrategy::ReplicateDense, MappingStrategy::SharedKernel];

/// Verifies every enumerated search candidate for every workload: clean,
/// or pruned by a typed compile error; the fixed-default candidate (index
/// 0) must be clean. Returns `true` when the gate fails.
fn check_candidates(target: &Target, json: bool) -> bool {
    let mut failed = false;
    for bench in MlBench::ALL {
        let spec = bench.spec();
        let candidates = enumerate_candidates(&spec, &target.hw);
        let mut clean = 0usize;
        let mut pruned = 0usize;
        for (idx, options) in candidates.iter().enumerate() {
            let label = format!(
                "{}[{} cap={} copies={}]",
                bench.name(),
                options.strategy().name(),
                options.stage_mats_cap,
                options.max_copies
            );
            let mapping = match map_network(&spec, &target.hw, *options) {
                Ok(mapping) => mapping,
                Err(err) => {
                    // The search driver prunes unmappable candidates; only
                    // the fixed default is required to map.
                    pruned += 1;
                    if idx == 0 {
                        eprintln!("{label}: fixed default failed to map: {err}");
                        failed = true;
                    }
                    continue;
                }
            };
            let mut diags = analyze(&spec, target, &mapping);
            if let Ok(plan) = lower_program(&spec, target, &mapping) {
                diags.extend(analyze_program(&spec, target, &mapping, &plan));
            }
            if has_errors(&diags) {
                // Verifier-rejected candidates are pruned, not errors —
                // except the fixed default, the search's tie-break anchor.
                pruned += 1;
                if idx == 0 {
                    eprintln!("{label}: fixed default drew errors:");
                    eprint!("{}", render_human(&diags));
                    failed = true;
                }
            } else {
                clean += 1;
            }
        }
        if json {
            println!(
                "{{\"workload\":\"{}\",\"candidates\":{},\"clean\":{clean},\"pruned\":{pruned}}}",
                bench.name(),
                candidates.len()
            );
        } else {
            println!(
                "{:8} {:24} candidates={} clean={clean} pruned={pruned}",
                bench.name(),
                bench.topology(),
                candidates.len()
            );
        }
        if clean == 0 {
            eprintln!("{}: no verifier-clean candidate survives", bench.name());
            failed = true;
        }
    }
    failed
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let program = args.iter().any(|a| a == "--program");
    let candidates = args.iter().any(|a| a == "--candidates");
    let target = Target::prime_default();
    let mut failed = false;
    if candidates {
        failed |= check_candidates(&target, json);
        return finish(failed);
    }
    for strategy in STRATEGIES {
        // Deployment semantics: `PrimeSystem::deploy` maps without
        // replication (replicas get placed at deploy time); the replicated
        // mapping is an analytic utilization model, not a physical
        // placement. Tile sharing still engages for bank-parallel
        // workloads because whole-network copies alone alias every tile.
        let options = CompileOptions { replicate: false, ..CompileOptions::fixed(strategy) };
        for bench in MlBench::ALL {
            let spec = bench.spec();
            let mapping = match map_network(&spec, &target.hw, options) {
                Ok(mapping) => mapping,
                Err(err) => {
                    eprintln!(
                        "{} [{}]: mapping failed: {err}",
                        bench.name(),
                        strategy.name()
                    );
                    failed = true;
                    continue;
                }
            };
            let mut diags = analyze(&spec, &target, &mapping);
            let mut plan_note = "";
            // Pass-3 findings gate on Warning-or-worse; Pass-1 warnings
            // (e.g. P011 Po truncation, lossy by design) stay advisory.
            let mut p3_flagged = 0usize;
            if program {
                match lower_program(&spec, &target, &mapping) {
                    Ok(plan) => {
                        let p3 = analyze_program(&spec, &target, &mapping, &plan);
                        p3_flagged = p3
                            .iter()
                            .filter(|d| d.severity >= Severity::Warning)
                            .count();
                        diags.extend(p3);
                    }
                    Err(reason) => {
                        plan_note = " (no in-memory lowering; pass 3 skipped)";
                        if !json {
                            eprintln!(
                                "{} [{}]: {reason}",
                                bench.name(),
                                strategy.name()
                            );
                        }
                    }
                }
            }
            let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
            let warnings =
                diags.iter().filter(|d| d.severity == Severity::Warning).count();
            if json {
                println!(
                    "{{\"workload\":\"{}\",\"strategy\":\"{}\",\"diagnostics\":{}}}",
                    bench.name(),
                    strategy.name(),
                    render_json(&diags)
                );
            } else {
                println!(
                    "{:8} {:16} {:24} errors={errors} warnings={warnings}{plan_note}",
                    bench.name(),
                    strategy.name(),
                    bench.topology()
                );
                if errors > 0 || p3_flagged > 0 {
                    print!("{}", render_human(&diags));
                }
            }
            // Pass 1 alone gates on errors; with `--program` the paper's
            // workloads must also be free of new Pass-3 warnings.
            if has_errors(&diags) || p3_flagged > 0 {
                failed = true;
            }
        }
    }
    finish(failed)
}

fn finish(failed: bool) -> ExitCode {
    if failed {
        eprintln!("analyze-workloads: FAILED");
        ExitCode::FAILURE
    } else {
        println!("analyze-workloads: all workloads accepted");
        ExitCode::SUCCESS
    }
}
