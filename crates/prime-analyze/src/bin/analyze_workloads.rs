//! Analyzer self-check: runs the deployment verifier over every MlBench
//! workload against the paper's default target, under every mapping
//! strategy.
//!
//! CI runs this to guarantee the verifier never regresses into rejecting
//! the paper's own benchmark suite — including full-size VGG-D under both
//! the replicate-dense and shared-kernel layouts. Exits nonzero if any
//! workload fails to map or draws an `Error`-severity diagnostic.
//!
//! With `--program`, additionally lowers each workload's command program
//! statically ([`lower_program`]) and runs the Pass-3 abstract
//! interpreter ([`analyze_program`]) over it — region dataflow, interval
//! precision, shared-tile aliasing, stage-graph deadlock freedom — and
//! fails on any `Warning`-or-worse finding (stricter than Pass 1's
//! error-only gate: the paper's own workloads must be warning-clean).
//! Workloads with no in-memory lowering (LRN host fallback) are reported
//! and skipped.
//!
//! ```text
//! analyze-workloads [--json] [--program]
//! ```

use std::process::ExitCode;

use prime_analyze::{
    analyze, analyze_program, has_errors, lower_program, render_human, render_json,
    Severity, Target,
};
use prime_compiler::{map_network, CompileOptions, MappingStrategy};
use prime_nn::MlBench;

const STRATEGIES: [MappingStrategy; 2] =
    [MappingStrategy::ReplicateDense, MappingStrategy::SharedKernel];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let program = args.iter().any(|a| a == "--program");
    let target = Target::prime_default();
    let mut failed = false;
    for strategy in STRATEGIES {
        // Deployment semantics: `PrimeSystem::deploy` maps without
        // replication (replicas get placed at deploy time); the replicated
        // mapping is an analytic utilization model, not a physical
        // placement. Tile sharing still engages for bank-parallel
        // workloads because whole-network copies alone alias every tile.
        let options = CompileOptions { replicate: false, strategy };
        for bench in MlBench::ALL {
            let spec = bench.spec();
            let mapping = match map_network(&spec, &target.hw, options) {
                Ok(mapping) => mapping,
                Err(err) => {
                    eprintln!(
                        "{} [{}]: mapping failed: {err}",
                        bench.name(),
                        strategy.name()
                    );
                    failed = true;
                    continue;
                }
            };
            let mut diags = analyze(&spec, &target, &mapping);
            let mut plan_note = "";
            // Pass-3 findings gate on Warning-or-worse; Pass-1 warnings
            // (e.g. P011 Po truncation, lossy by design) stay advisory.
            let mut p3_flagged = 0usize;
            if program {
                match lower_program(&spec, &target, &mapping) {
                    Ok(plan) => {
                        let p3 = analyze_program(&spec, &target, &mapping, &plan);
                        p3_flagged = p3
                            .iter()
                            .filter(|d| d.severity >= Severity::Warning)
                            .count();
                        diags.extend(p3);
                    }
                    Err(reason) => {
                        plan_note = " (no in-memory lowering; pass 3 skipped)";
                        if !json {
                            eprintln!(
                                "{} [{}]: {reason}",
                                bench.name(),
                                strategy.name()
                            );
                        }
                    }
                }
            }
            let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
            let warnings =
                diags.iter().filter(|d| d.severity == Severity::Warning).count();
            if json {
                println!(
                    "{{\"workload\":\"{}\",\"strategy\":\"{}\",\"diagnostics\":{}}}",
                    bench.name(),
                    strategy.name(),
                    render_json(&diags)
                );
            } else {
                println!(
                    "{:8} {:16} {:24} errors={errors} warnings={warnings}{plan_note}",
                    bench.name(),
                    strategy.name(),
                    bench.topology()
                );
                if errors > 0 || p3_flagged > 0 {
                    print!("{}", render_human(&diags));
                }
            }
            // Pass 1 alone gates on errors; with `--program` the paper's
            // workloads must also be free of new Pass-3 warnings.
            if has_errors(&diags) || p3_flagged > 0 {
                failed = true;
            }
        }
    }
    if failed {
        eprintln!("analyze-workloads: FAILED");
        ExitCode::FAILURE
    } else {
        println!("analyze-workloads: all workloads accepted");
        ExitCode::SUCCESS
    }
}
