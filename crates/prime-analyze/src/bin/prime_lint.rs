//! `prime-lint`: the repo-specific source lint gate.
//!
//! Scans every first-party `.rs` file (skipping `vendor/` and `target/`)
//! for the repo rules — P050 allocation-in-hot-kernel, P051
//! panic-in-library, P052 unsafe — consulting the `prime-lint.allow`
//! allowlist at the repo root. Exits nonzero when any `Error`-severity
//! finding survives, so CI can gate on it.
//!
//! ```text
//! prime-lint [--root DIR] [--allowlist FILE] [--json]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use prime_analyze::{has_errors, render_human, render_json, Allowlist};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut allow_path: Option<PathBuf> = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(args.next().unwrap_or_else(|| ".".to_string()));
            }
            "--allowlist" => {
                allow_path = args.next().map(PathBuf::from);
            }
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: prime-lint [--root DIR] [--allowlist FILE] [--json]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("prime-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let allow_path = allow_path.unwrap_or_else(|| root.join("prime-lint.allow"));
    let mut allow = Allowlist::load(&allow_path);
    let diags = match prime_analyze::lint_root(&root, &mut allow) {
        Ok(diags) => diags,
        Err(err) => {
            eprintln!("prime-lint: cannot scan {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", render_json(&diags));
    } else if diags.is_empty() {
        println!("prime-lint: clean");
    } else {
        print!("{}", render_human(&diags));
        println!("prime-lint: {} finding(s)", diags.len());
    }
    if has_errors(&diags) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
