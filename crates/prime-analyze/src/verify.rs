//! Pass 1 — the static deployment verifier.
//!
//! [`analyze`] checks every invariant the runtime used to trust, before a
//! single cycle is simulated: crossbar tiling arithmetic, pair-array and
//! precision budgets (paper §III-D), bank and FF-buffer capacity,
//! pipeline-stage legality (§IV-B), and morphing-state legality (§IV-C —
//! no mat may be both memory-mapped and compute-mapped).
//!
//! The function is pure: it inspects a [`NetworkSpec`], a [`Target`], and
//! a [`NetworkMapping`] and returns diagnostics. `PrimeSystem::deploy`
//! refuses to deploy when any diagnostic is `Error`-severity.

use prime_circuits::ComposingScheme;
use prime_compiler::{HwTarget, MappingStrategy, NetworkMapping, NnScale, PipelineStage};
use prime_mem::MemGeometry;
use prime_nn::{LayerSpec, NetworkSpec};

use crate::diag::{Code, Diagnostic, Span};

/// Utilization below this fraction of the allocated FF cells triggers the
/// advisory [`Code::P013`] warning.
pub const LOW_UTILIZATION_THRESHOLD: f64 = 0.02;

/// Burst width (in 64-bit words) used when a stage-boundary activation
/// belongs to a conv/pool layer: those feature maps stay resident in the
/// Mem subarrays and stream through the FF buffer in bursts of at most
/// this many words, so the buffer never needs to hold a full feature
/// map. The runtime (`CommandRunner` stage transfers in `prime-core`)
/// and the verifier's [`Code::P019`] staging accounting share this
/// constant.
pub const WINDOW_IO_CHUNK_WORDS: usize = 256;

/// A single conv layer's row ring + window chunk may occupy at most
/// `buffer_words / CONV_RESIDENT_BUDGET_DIVISOR` of the FF buffer to run
/// the weight-stationary row-reuse schedule; beyond that the runner falls
/// back to per-pixel window staging ([`Code::P020`]). The divisor leaves
/// the rest of the buffer for FC staging, boundary bursts, and the other
/// layers sharing the stage.
pub const CONV_RESIDENT_BUDGET_DIVISOR: usize = 4;

/// Buffer-staging plan for one conv layer, shared by the runtime
/// (`CommandRunner` compile in `prime-core`) and the verifier's
/// [`Code::P019`]/[`Code::P020`] accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvStaging {
    /// Whether the layer runs the weight-stationary row-reuse schedule
    /// (row ring + chunk region resident in the FF buffer).
    pub resident: bool,
    /// Words occupied by the `kernel`-row input ring (resident only).
    pub ring_words: usize,
    /// Output pixels evaluated per staged window chunk (1 when falling
    /// back to per-pixel staging).
    pub chunk_pixels: usize,
    /// Total buffer words the layer's staging occupies: ring + chunk when
    /// resident, a single im2col window otherwise.
    pub words: usize,
}

/// Computes the conv staging plan for a layer shape and buffer capacity.
///
/// The row ring keeps the `kernel` input rows a row of output pixels
/// reads (`kernel * in_ch * in_w` words, halo rows reused across output
/// rows); the chunk region batches up to [`WINDOW_IO_CHUNK_WORDS`] of
/// gathered windows so tile traversal amortizes over
/// `chunk_pixels` output pixels. A layer is resident iff both fit the
/// [`CONV_RESIDENT_BUDGET_DIVISOR`] budget.
pub fn conv_staging(
    in_ch: usize,
    kernel: usize,
    in_w: usize,
    out_w: usize,
    buffer_words: usize,
) -> ConvStaging {
    let window_rows = in_ch * kernel * kernel;
    let ring_words = kernel * in_ch * in_w;
    let chunk_pixels = WINDOW_IO_CHUNK_WORDS
        .checked_div(window_rows)
        .map_or(1, |p| p.clamp(1, out_w.max(1)));
    let chunk_words = chunk_pixels * window_rows;
    let resident =
        ring_words + chunk_words <= buffer_words / CONV_RESIDENT_BUDGET_DIVISOR;
    if resident {
        ConvStaging { resident, ring_words, chunk_pixels, words: ring_words + chunk_words }
    } else {
        ConvStaging { resident, ring_words, chunk_pixels: 1, words: window_rows }
    }
}

/// Everything the verifier needs to know about the deployment target.
#[derive(Debug, Clone, PartialEq)]
pub struct Target {
    /// Composed-weight mat geometry (rows x composed columns, mats, banks).
    pub hw: HwTarget,
    /// The input/weight composing scheme in effect.
    pub scheme: ComposingScheme,
    /// Capacity of each bank's FF buffer subarray, in 64-bit words.
    pub buffer_words: usize,
    /// Bits one physical ReRAM cell can hold in compute mode (MLC budget).
    pub cell_bits: u8,
    /// Bits one physical input driver can encode per signal.
    pub input_signal_bits: u8,
    /// Physical (uncomposed) bitlines per mat; must be twice the composed
    /// column count because weights pair two adjacent cells.
    pub phys_mat_cols: usize,
    /// Width of the per-mat reference counter in the controller's mat
    /// table. Under a shared-kernel layout every placement of a tile
    /// bumps the owning mat's counter, so a group's reference count must
    /// fit in this many bits.
    pub tile_ref_bits: u8,
}

impl Target {
    /// Builds a target from a memory geometry and a composing scheme,
    /// using the paper's device assumptions (4-bit MLC compute cells,
    /// 3-bit input drivers).
    ///
    /// # Errors
    ///
    /// Propagates [`prime_compiler::CompileError`] for degenerate
    /// geometries.
    pub fn from_geometry(
        geometry: &MemGeometry,
        scheme: ComposingScheme,
    ) -> Result<Self, prime_compiler::CompileError> {
        let hw = HwTarget::from_geometry(geometry)?;
        Ok(Target {
            hw,
            scheme,
            buffer_words: (geometry.subarray_bytes() / 8) as usize,
            cell_bits: 4,
            input_signal_bits: 3,
            phys_mat_cols: geometry.mat_cols,
            tile_ref_bits: 16,
        })
    }

    /// The paper's default target: 16 GB geometry, `Pin=6 Pw=8 Po=6 PN=8`
    /// composing scheme, 4-bit MLC cells, 3-bit input signals.
    pub fn prime_default() -> Self {
        let geometry = MemGeometry::prime_default();
        Target {
            hw: HwTarget::prime_default(),
            scheme: ComposingScheme::prime_default(),
            buffer_words: (geometry.subarray_bytes() / 8) as usize,
            cell_bits: 4,
            input_signal_bits: 3,
            phys_mat_cols: geometry.mat_cols,
            tile_ref_bits: 16,
        }
    }

    /// Largest reference count the mat table can record for one shared
    /// tile (`2^tile_ref_bits - 1`, saturating at `usize::MAX`).
    pub fn max_tile_refs(&self) -> usize {
        if u32::from(self.tile_ref_bits) >= usize::BITS {
            usize::MAX
        } else {
            (1usize << self.tile_ref_bits) - 1
        }
    }
}

fn ceil_log2(n: usize) -> u32 {
    if n <= 1 { 0 } else { usize::BITS - (n - 1).leading_zeros() }
}

fn layer_span(index: usize, layer: &LayerSpec) -> Span {
    Span::Layer { index, entity: layer.describe() }
}

/// Expected lowering of one layer on `hw`, mirroring the compiler's rules
/// (FC: `inputs + 1` bias row; conv: `in_ch * k * k + 1` rows, one column
/// per output map; pooling/LRN: no mats).
fn expected_tiling(spec: &LayerSpec, hw: &HwTarget) -> (usize, usize, usize, usize) {
    let (rows, cols) = match *spec {
        LayerSpec::FullyConnected { inputs, outputs } => (inputs + 1, outputs),
        LayerSpec::Conv { in_ch, out_ch, kernel, .. } => (in_ch * kernel * kernel + 1, out_ch),
        LayerSpec::Pool { .. } | LayerSpec::Lrn { .. } => return (0, 0, 0, 0),
    };
    (rows, cols, rows.div_ceil(hw.mat_rows), cols.div_ceil(hw.mat_cols))
}

/// Checks pipeline-stage legality shared by the verifier and the runtime:
/// no empty stage, banks strictly increasing, contiguous layer coverage of
/// exactly `n_layers` layers, stages within the first `n_banks` banks, and
/// — when `mats_per_bank` is known — no bank-span overlap between
/// consecutive stages (the morphing-state conflict) and no multi-layer
/// stage overflowing a bank.
pub fn check_pipeline(
    pipeline: &[PipelineStage],
    n_layers: usize,
    n_banks: usize,
    mats_per_bank: Option<usize>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut next_layer = 0usize;
    let mut prev: Option<(usize, usize)> = None; // (bank, banks spanned)
    for (index, stage) in pipeline.iter().enumerate() {
        let span = Span::Stage { index, bank: stage.bank };
        if stage.layers.is_empty() {
            diags.push(Diagnostic::new(
                Code::P006,
                span.clone(),
                "pipeline stage maps no layers".to_string(),
            ));
        }
        if let Some((prev_bank, prev_span)) = prev {
            if stage.bank <= prev_bank {
                diags.push(Diagnostic::new(
                    Code::P005,
                    span.clone(),
                    format!(
                        "stage {index} targets bank {} but the previous stage already \
                         occupies bank {prev_bank}; stage banks must strictly increase",
                        stage.bank
                    ),
                ));
            } else if stage.bank < prev_bank + prev_span {
                diags.push(Diagnostic::new(
                    Code::P008,
                    span.clone(),
                    format!(
                        "stage {index} starts at bank {} inside the {prev_span}-bank span \
                         of the previous stage (banks {prev_bank}..{}); a mat cannot be \
                         compute-mapped by two stages at once",
                        stage.bank,
                        prev_bank + prev_span
                    ),
                ));
            }
        }
        if stage.bank >= n_banks {
            diags.push(Diagnostic::new(
                Code::P004,
                span.clone(),
                format!(
                    "stage {index} targets bank {} but only {n_banks} bank(s) exist",
                    stage.bank
                ),
            ));
        }
        let mut spanned = 1usize;
        if let Some(capacity) = mats_per_bank {
            spanned = stage.mats.div_ceil(capacity).max(1);
            if stage.mats > capacity && stage.layers.len() > 1 {
                diags.push(Diagnostic::new(
                    Code::P004,
                    span.clone(),
                    format!(
                        "stage {index} packs {} layers into {} mats but a bank holds \
                         {capacity}; only a single oversized layer may span banks",
                        stage.layers.len(),
                        stage.mats
                    ),
                ));
            }
            if stage.bank + spanned > n_banks {
                diags.push(Diagnostic::new(
                    Code::P003,
                    span.clone(),
                    format!(
                        "stage {index} spans banks {}..{} but only {n_banks} bank(s) exist",
                        stage.bank,
                        stage.bank + spanned
                    ),
                ));
            }
        }
        for &layer in &stage.layers {
            if layer != next_layer {
                diags.push(Diagnostic::new(
                    Code::P006,
                    span.clone(),
                    format!(
                        "stage {index} maps layer {layer} but layer {next_layer} is the \
                         next uncovered layer; coverage must be contiguous and in order"
                    ),
                ));
                return diags;
            }
            next_layer += 1;
        }
        prev = Some((stage.bank, spanned));
    }
    if !pipeline.is_empty() && next_layer != n_layers {
        diags.push(Diagnostic::new(
            Code::P006,
            Span::Network,
            format!("pipeline covers {next_layer} of {n_layers} layers"),
        ));
    }
    diags
}

/// One class of aliased weight tiles under a shared-kernel layout: every
/// tile in the group drives the same wordline count (hence derives the
/// same `PN` when programmed) and is referenced by the same number of
/// placements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedTileGroup {
    /// Index of the layer whose kernel the tiles hold.
    pub layer: usize,
    /// Wordline rows every aliased placement drives on the tile.
    pub rows: usize,
    /// Composed weight columns of each tile.
    pub cols: usize,
    /// Unique physical tiles in the group.
    pub tiles: usize,
    /// Placements referencing each tile (the mat-table refcount).
    pub refs: usize,
    /// Inputs-per-array exponent (`PN`) the aliases assume. Programming
    /// derives `PN` from the driven rows, so aliases disagreeing here
    /// would sense through mismatched output windows.
    pub pn: u8,
    /// MLC precision the aliases assume for the tile's cells.
    pub cell_bits: u8,
}

/// The `PN` the device derives when programming a tile that drives `rows`
/// wordlines: `ceil(log2(rows))`, at least 1. Mirrors the runtime's
/// `program_composed` rule, which recomputes `PN` from the actual row
/// count rather than trusting the scheme's default.
pub fn tile_pn(rows: usize) -> u8 {
    (ceil_log2(rows.max(1)) as u8).max(1)
}

/// Derives the shared-tile groups a mapping implies: one group per
/// distinct tile row count of every layer lowered with
/// [`MappingStrategy::SharedKernel`]. A row-split layer yields two groups
/// (full-height tiles and the partial last band) because the two derive
/// different `PN` values and must be checked separately.
pub fn shared_layout(mapping: &NetworkMapping, target: &Target) -> Vec<SharedTileGroup> {
    let hw = &target.hw;
    let mut groups = Vec::new();
    for (index, layer) in mapping.layers.iter().enumerate() {
        if layer.strategy != MappingStrategy::SharedKernel || layer.base_mats == 0 {
            continue;
        }
        let last_rows = layer.rows_needed - (layer.row_tiles - 1) * hw.mat_rows;
        let cols = layer.cols_needed.min(hw.mat_cols);
        let refs = layer.tile_refs.max(1);
        if layer.row_tiles > 1 {
            groups.push(SharedTileGroup {
                layer: index,
                rows: hw.mat_rows,
                cols,
                tiles: (layer.row_tiles - 1) * layer.col_tiles,
                refs,
                pn: tile_pn(hw.mat_rows),
                cell_bits: target.cell_bits,
            });
        }
        groups.push(SharedTileGroup {
            layer: index,
            rows: last_rows,
            cols,
            tiles: layer.col_tiles,
            refs,
            pn: tile_pn(last_rows),
            cell_bits: target.cell_bits,
        });
    }
    groups
}

/// Checks shared-tile legality: every alias of a physical tile must agree
/// on the composing scheme and cell precision the tile was programmed
/// with (P021), and the group's reference count must fit the mat table's
/// per-mat counter (P022). Pure over the groups so fixtures can probe
/// violating layouts directly.
pub fn check_shared_layout(groups: &[SharedTileGroup], target: &Target) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for group in groups {
        let span = Span::Layer {
            index: group.layer,
            entity: format!(
                "shared {}x{} tile group ({} tile(s), {} refs)",
                group.rows, group.cols, group.tiles, group.refs
            ),
        };
        let expected_pn = tile_pn(group.rows);
        if group.pn != expected_pn {
            diags.push(Diagnostic::new(
                Code::P021,
                span.clone(),
                format!(
                    "aliased placements assume PN={} but programming a {}-row tile \
                     derives PN={expected_pn}; every alias of a shared tile must agree \
                     on the composing scheme",
                    group.pn, group.rows
                ),
            ));
        }
        if group.cell_bits != target.cell_bits {
            diags.push(Diagnostic::new(
                Code::P021,
                span.clone(),
                format!(
                    "aliased placements assume {}-bit cells but the target programs \
                     {}-bit MLC levels; every alias of a shared tile must agree on \
                     weight precision",
                    group.cell_bits, target.cell_bits
                ),
            ));
        }
        if group.refs == 0 {
            diags.push(Diagnostic::new(
                Code::P022,
                span,
                "shared tile group records zero references; an unreferenced tile \
                 would be reclaimed while still mapped"
                    .to_string(),
            ));
        } else if group.refs > target.max_tile_refs() {
            diags.push(Diagnostic::new(
                Code::P022,
                span,
                format!(
                    "shared tile referenced by {} placements but the {}-bit mat-table \
                     counter saturates at {}",
                    group.refs,
                    target.tile_ref_bits,
                    target.max_tile_refs()
                ),
            ));
        }
    }
    diags
}

/// Statically verifies a mapping against the spec it claims to implement
/// and the target it will deploy on. Returns every finding; the caller
/// decides what blocks (deployment refuses on `Error` severity).
pub fn analyze(spec: &NetworkSpec, target: &Target, mapping: &NetworkMapping) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let hw = &target.hw;
    let capacity = hw.mats_per_bank();
    let scheme = &target.scheme;

    // Pair-array accounting (§III-B): signed weights need a positive and a
    // negative physical column, so composed columns are half the bitlines.
    if target.phys_mat_cols != 2 * hw.mat_cols {
        diags.push(Diagnostic::new(
            Code::P012,
            Span::Network,
            format!(
                "target exposes {} composed columns over {} physical bitlines; the \
                 positive/negative pair split requires exactly 2 bitlines per composed weight",
                hw.mat_cols, target.phys_mat_cols
            ),
        ));
    }

    // Precision budgets (§III-D): the scheme's physical halves must fit the
    // MLC cell and the input driver.
    if scheme.weight_half_bits() > target.cell_bits {
        diags.push(Diagnostic::new(
            Code::P010,
            Span::Network,
            format!(
                "composing scheme needs {}-bit cells but the MLC budget is {} bits",
                scheme.weight_half_bits(),
                target.cell_bits
            ),
        ));
    }
    if scheme.input_half_bits() > target.input_signal_bits {
        diags.push(Diagnostic::new(
            Code::P010,
            Span::Network,
            format!(
                "composing scheme needs {}-bit input signals but the driver budget is {} bits",
                scheme.input_half_bits(),
                target.input_signal_bits
            ),
        ));
    }

    if mapping.layers.is_empty() {
        diags.push(Diagnostic::new(Code::P016, Span::Network, "mapping maps no layers"));
        return diags;
    }
    if mapping.layers.len() != spec.layers().len() {
        diags.push(Diagnostic::new(
            Code::P001,
            Span::Network,
            format!(
                "spec `{}` has {} layers but the mapping carries {}",
                spec.name(),
                spec.layers().len(),
                mapping.layers.len()
            ),
        ));
        return diags;
    }

    // Per-layer checks: spec drift, tiling arithmetic, truncation loss.
    for (index, (lm, ls)) in mapping.layers.iter().zip(spec.layers()).enumerate() {
        let span = layer_span(index, ls);
        if lm.layer != *ls {
            diags.push(Diagnostic::new(
                Code::P001,
                span.clone(),
                format!(
                    "mapping layer {index} is `{}` but the spec says `{}`",
                    lm.layer.describe(),
                    ls.describe()
                ),
            ));
            continue;
        }
        let (rows, cols, row_tiles, col_tiles) = expected_tiling(ls, hw);
        let base_mats = row_tiles * col_tiles;
        if lm.rows_needed != rows
            || lm.cols_needed != cols
            || lm.row_tiles != row_tiles
            || lm.col_tiles != col_tiles
            || lm.base_mats != base_mats
        {
            diags.push(Diagnostic::new(
                Code::P002,
                span.clone(),
                format!(
                    "layer needs {rows}x{cols} cells = {row_tiles}x{col_tiles} tiles \
                     ({base_mats} mats) on {}x{} mats, but the mapping records \
                     {}x{} cells = {}x{} tiles ({} mats)",
                    hw.mat_rows,
                    hw.mat_cols,
                    lm.rows_needed,
                    lm.cols_needed,
                    lm.row_tiles,
                    lm.col_tiles,
                    lm.base_mats
                ),
            ));
        }
        if lm.in_mat_replication == 0 {
            diags.push(Diagnostic::new(
                Code::P002,
                span.clone(),
                "in-mat replication factor must be at least 1",
            ));
        }
        // Kernel replication legality (§IV-B): replicas pack diagonally
        // inside a single mat, so a replicated layer must tile to one mat
        // and every copy's rows and columns must fit the mat edge.
        if lm.in_mat_replication > 1 {
            if lm.base_mats != 1 {
                diags.push(Diagnostic::new(
                    Code::P018,
                    span.clone(),
                    format!(
                        "in-mat replication x{} on a layer tiling to {} mats; only \
                         single-mat kernels may replicate inside a mat",
                        lm.in_mat_replication, lm.base_mats
                    ),
                ));
            } else if lm.in_mat_replication * lm.rows_needed > hw.mat_rows
                || lm.in_mat_replication * lm.cols_needed > hw.mat_cols
            {
                diags.push(Diagnostic::new(
                    Code::P018,
                    span.clone(),
                    format!(
                        "{} diagonal copies of a {}x{} kernel exceed the {}x{} mat",
                        lm.in_mat_replication,
                        lm.rows_needed,
                        lm.cols_needed,
                        hw.mat_rows,
                        hw.mat_cols
                    ),
                ));
            }
        }
        if ls.needs_cpu_fallback() {
            diags.push(Diagnostic::new(
                Code::P015,
                span.clone(),
                "LRN has no in-memory implementation and will run on the host CPU (§III-E)",
            ));
        }
        // Po truncation (Eq. 3): a full-accuracy result of a `rows`-input
        // dot product carries pin + pw + ceil(log2(rows)) bits; keeping
        // only the highest Po bits discards the remainder.
        if ls.is_weight_layer() && rows > 0 {
            let full_bits =
                u32::from(scheme.input_bits()) + u32::from(scheme.weight_bits()) + ceil_log2(rows);
            let po = u32::from(scheme.output_bits());
            if po < full_bits {
                diags.push(Diagnostic::new(
                    Code::P011,
                    span,
                    format!(
                        "a {rows}-input dot product carries up to {full_bits} result bits; \
                         Po={po} keeps the highest {po} and truncates {} (§III-D, lossy \
                         by design — verify accuracy targets)",
                        full_bits - po
                    ),
                ));
            }
        }
    }

    // Whole-network capacity accounting.
    let base_mats: usize = mapping.layers.iter().map(|l| l.base_mats).sum();
    if mapping.base_mats != base_mats {
        diags.push(Diagnostic::new(
            Code::P003,
            Span::Network,
            format!(
                "mapping claims {} base mats but its layers sum to {base_mats}",
                mapping.base_mats
            ),
        ));
    }
    if base_mats > hw.total_mats() {
        diags.push(Diagnostic::new(
            Code::P003,
            Span::Network,
            format!(
                "network needs {base_mats} mats but the memory has {} FF mats in total",
                hw.total_mats()
            ),
        ));
    }
    let total_with_replicas: usize = mapping.layers.iter().map(|l| l.total_mats()).sum();
    if total_with_replicas > mapping.allocated_mats && mapping.allocated_mats > 0 {
        diags.push(Diagnostic::new(
            Code::P003,
            Span::Network,
            format!(
                "replication inflates the network to {total_with_replicas} mats but only \
                 {} are allocated",
                mapping.allocated_mats
            ),
        ));
    }

    // Utilization sanity.
    for (label, value) in [
        ("utilization_before", mapping.utilization_before),
        ("utilization_after", mapping.utilization_after),
    ] {
        if !(0.0..=1.0).contains(&value) || value.is_nan() {
            diags.push(Diagnostic::new(
                Code::P014,
                Span::Network,
                format!("{label} = {value} is outside [0, 1]"),
            ));
        }
    }
    if mapping.utilization_after >= 0.0
        && mapping.utilization_after < mapping.utilization_before
    {
        diags.push(Diagnostic::new(
            Code::P014,
            Span::Network,
            format!(
                "replication cannot lower utilization ({} -> {})",
                mapping.utilization_before, mapping.utilization_after
            ),
        ));
    } else if mapping.utilization_after < LOW_UTILIZATION_THRESHOLD {
        diags.push(Diagnostic::new(
            Code::P013,
            Span::Network,
            format!(
                "FF utilization after replication is {:.4}; most allocated compute mats \
                 would sit idle",
                mapping.utilization_after
            ),
        ));
    }

    // Scale class vs pipeline shape (§IV-B).
    if mapping.pipeline.is_empty() {
        if mapping.scale == NnScale::Large {
            diags.push(Diagnostic::new(
                Code::P007,
                Span::Network,
                "large-scale mapping carries no inter-bank pipeline",
            ));
        }
        if mapping.banks_per_copy > 1 {
            diags.push(Diagnostic::new(
                Code::P007,
                Span::Network,
                format!(
                    "mapping spans {} banks per copy but has no pipeline stages",
                    mapping.banks_per_copy
                ),
            ));
        }
        if base_mats > capacity {
            diags.push(Diagnostic::new(
                Code::P004,
                Span::Network,
                format!(
                    "single-bank mapping needs {base_mats} mats but a bank holds {capacity}"
                ),
            ));
        }
        // Morphing legality for replicated single-bank copies: each copy
        // morphs `banks_per_copy` banks to compute; copies must not share.
        if mapping.copies_across_memory * mapping.banks_per_copy.max(1) > hw.banks {
            diags.push(Diagnostic::new(
                Code::P008,
                Span::Network,
                format!(
                    "{} copies x {} bank(s) each exceed the memory's {} banks; copies \
                     would compute-map the same mats",
                    mapping.copies_across_memory,
                    mapping.banks_per_copy.max(1),
                    hw.banks
                ),
            ));
        }
    } else {
        if mapping.scale != NnScale::Large {
            diags.push(Diagnostic::new(
                Code::P007,
                Span::Network,
                format!(
                    "{:?}-scale mapping carries a {}-stage pipeline; only large-scale \
                     mappings pipeline across banks",
                    mapping.scale,
                    mapping.pipeline.len()
                ),
            ));
        }
        diags.extend(check_pipeline(
            &mapping.pipeline,
            mapping.layers.len(),
            hw.banks,
            Some(capacity),
        ));
        // Stage mat accounting must agree with the layers it hosts.
        for (index, stage) in mapping.pipeline.iter().enumerate() {
            let expected: usize = stage
                .layers
                .iter()
                .filter_map(|&l| mapping.layers.get(l))
                .map(|l| l.total_mats())
                .sum();
            if stage.mats != expected {
                diags.push(Diagnostic::new(
                    Code::P004,
                    Span::Stage { index, bank: stage.bank },
                    format!(
                        "stage records {} mats but its layers occupy {expected}",
                        stage.mats
                    ),
                ));
            }
        }
    }

    // FF-buffer capacity (§III-C): each stage stages its FC input vectors
    // and final outputs in the bank's buffer subarray, plus one im2col /
    // pooling window per conv/pool layer (the feature maps themselves stay
    // Mem-resident and stream through in bursts).
    let stage_layer_sets: Vec<Vec<usize>> = if mapping.pipeline.is_empty() {
        vec![(0..mapping.layers.len()).collect()]
    } else {
        mapping.pipeline.iter().map(|s| s.layers.clone()).collect()
    };
    for (index, layer_set) in stage_layer_sets.iter().enumerate() {
        let stage_span = || {
            if mapping.pipeline.is_empty() {
                Span::Network
            } else {
                Span::Stage { index, bank: mapping.pipeline[index].bank }
            }
        };
        let mut words = 0usize;
        let mut last_fc_outputs = 0usize;
        // Conv/pool feature maps stay Mem-resident; only their im2col /
        // pooling windows are staged, plus the boundary transfer bursts.
        let mut window_words = 0usize;
        for &l in layer_set {
            match mapping.layers.get(l).map(|m| m.layer) {
                Some(LayerSpec::FullyConnected { inputs, outputs }) => {
                    words += inputs;
                    last_fc_outputs = outputs;
                }
                Some(spec @ LayerSpec::Conv { in_ch, kernel, in_w, .. }) => {
                    let out_w = spec.conv_out_dims().map_or(0, |(_, w)| w);
                    let staging =
                        conv_staging(in_ch, kernel, in_w, out_w, target.buffer_words);
                    window_words += staging.words + 1;
                    if !staging.resident {
                        diags.push(Diagnostic::new(
                            Code::P020,
                            Span::Layer { index: l, entity: spec.describe() },
                            format!(
                                "row ring ({} words) + window chunk exceeds the \
                                 residency budget ({} of {} buffer words); the \
                                 runner stages windows per pixel for this layer",
                                staging.ring_words,
                                target.buffer_words / CONV_RESIDENT_BUDGET_DIVISOR,
                                target.buffer_words
                            ),
                        ));
                    }
                }
                Some(LayerSpec::Pool { window, .. }) => {
                    window_words += window * window;
                }
                _ => {}
            }
        }
        words += last_fc_outputs + window_words;
        if words > target.buffer_words {
            diags.push(Diagnostic::new(
                Code::P009,
                stage_span(),
                format!(
                    "stage working set needs {words} buffer words but the FF buffer \
                     holds {}",
                    target.buffer_words
                ),
            ));
        }
        if window_words > 0 && window_words + 2 * WINDOW_IO_CHUNK_WORDS > target.buffer_words {
            diags.push(Diagnostic::new(
                Code::P019,
                stage_span(),
                format!(
                    "staging the stage's conv/pool windows needs {window_words} buffer \
                     words (+{} for boundary bursts) but the FF buffer holds {}",
                    2 * WINDOW_IO_CHUNK_WORDS,
                    target.buffer_words
                ),
            ));
        }
    }

    // Shared-kernel layout legality (P021/P022) and fallback visibility
    // (P023): layers that asked for tile sharing but have a single
    // placement per tile gain nothing and are lowered dense.
    if mapping.strategy == MappingStrategy::SharedKernel {
        for (index, layer) in mapping.layers.iter().enumerate() {
            if layer.strategy == MappingStrategy::ReplicateDense && layer.base_mats > 0 {
                diags.push(Diagnostic::new(
                    Code::P023,
                    layer_span(index, &layer.layer),
                    format!(
                        "shared-kernel layout requested but every tile has exactly \
                         {} placement(s); lowering replicate-dense",
                        layer.tile_refs.max(1)
                    ),
                ));
            }
        }
    }
    diags.extend(check_shared_layout(&shared_layout(mapping, target), target));

    crate::diag::sort_diagnostics(&mut diags);
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use prime_compiler::{map_network, CompileOptions};
    use prime_nn::MlBench;

    use crate::diag::{has_errors, Severity};

    /// Deployment options: `PrimeSystem::deploy` maps without replication
    /// (replicas are placed physically at deploy time); the replicated
    /// mapping is an analytic utilization model, not a placement, so the
    /// verifier's placement rules apply to the former.
    const DEPLOY_OPTIONS: CompileOptions = CompileOptions {
        replicate: false,
        ..CompileOptions::fixed(MappingStrategy::ReplicateDense)
    };

    fn default_analyze(bench: MlBench) -> Vec<Diagnostic> {
        let spec = bench.spec();
        let target = Target::prime_default();
        let mapping = map_network(&spec, &target.hw, DEPLOY_OPTIONS).unwrap();
        analyze(&spec, &target, &mapping)
    }

    #[test]
    fn every_mlbench_workload_is_accepted() {
        for bench in MlBench::ALL {
            let diags = default_analyze(bench);
            assert!(
                !has_errors(&diags),
                "{}: unexpected errors:\n{}",
                bench.name(),
                crate::diag::render_human(&diags)
            );
        }
    }

    #[test]
    fn replicated_small_and_medium_mappings_are_accepted() {
        let target = Target::prime_default();
        for bench in [MlBench::Cnn1, MlBench::Cnn2, MlBench::MlpS, MlBench::MlpM, MlBench::MlpL] {
            let spec = bench.spec();
            let mapping = map_network(&spec, &target.hw, CompileOptions::default()).unwrap();
            let diags = analyze(&spec, &target, &mapping);
            assert!(
                !has_errors(&diags),
                "{}: unexpected errors:\n{}",
                bench.name(),
                crate::diag::render_human(&diags)
            );
        }
    }

    #[test]
    fn po_truncation_is_reported_as_warning() {
        let diags = default_analyze(MlBench::MlpS);
        assert!(diags
            .iter()
            .any(|d| d.code == Code::P011 && d.severity == Severity::Warning));
    }

    #[test]
    fn ceil_log2_matches_definition() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(256), 8);
        assert_eq!(ceil_log2(257), 9);
    }

    #[test]
    fn precision_overflow_is_p010() {
        let spec = MlBench::MlpS.spec();
        let mut target = Target::prime_default();
        let mapping = map_network(&spec, &target.hw, DEPLOY_OPTIONS).unwrap();
        target.cell_bits = 2; // scheme needs 4-bit cells
        let diags = analyze(&spec, &target, &mapping);
        assert!(diags.iter().any(|d| d.code == Code::P010), "{diags:?}");
    }

    #[test]
    fn pair_array_mismatch_is_p012() {
        let spec = MlBench::MlpS.spec();
        let mut target = Target::prime_default();
        let mapping = map_network(&spec, &target.hw, DEPLOY_OPTIONS).unwrap();
        target.phys_mat_cols = target.hw.mat_cols; // no room for the negative array
        let diags = analyze(&spec, &target, &mapping);
        assert!(diags.iter().any(|d| d.code == Code::P012), "{diags:?}");
    }

    #[test]
    fn illegal_kernel_replication_is_p018() {
        let spec = MlBench::Cnn1.spec();
        let target = Target::prime_default();
        let mut mapping = map_network(&spec, &target.hw, CompileOptions::default()).unwrap();
        // Inflate the first conv layer's replication past what fits a mat.
        let lm = &mut mapping.layers[0];
        assert!(lm.rows_needed > 0, "expected a weight layer first");
        lm.in_mat_replication = target.hw.mat_rows / lm.rows_needed + 1;
        let diags = analyze(&spec, &target, &mapping);
        assert!(diags.iter().any(|d| d.code == Code::P018), "{diags:?}");
    }

    #[test]
    fn conv_window_staging_overflow_is_p019() {
        let spec = MlBench::Cnn1.spec();
        let mut target = Target::prime_default();
        let mapping = map_network(&spec, &target.hw, DEPLOY_OPTIONS).unwrap();
        // A buffer smaller than one im2col window cannot stage conv inputs.
        target.buffer_words = 16;
        let diags = analyze(&spec, &target, &mapping);
        assert!(diags.iter().any(|d| d.code == Code::P019), "{diags:?}");
    }

    #[test]
    fn conv_workload_stage_accounting_includes_windows_only() {
        // VGG-D's conv feature maps are far larger than the FF buffer; the
        // stage accounting must charge only window-sized staging so the
        // paper's own workload still deploys (the gap this PR closes).
        let diags = default_analyze(MlBench::VggD);
        assert!(
            !diags.iter().any(|d| d.code == Code::P009 || d.code == Code::P019),
            "{diags:?}"
        );
    }

    #[test]
    fn check_pipeline_accepts_compiler_output() {
        let target = Target::prime_default();
        let mapping =
            map_network(&MlBench::VggD.spec(), &target.hw, DEPLOY_OPTIONS).unwrap();
        let diags = check_pipeline(
            &mapping.pipeline,
            mapping.layers.len(),
            target.hw.banks,
            Some(target.hw.mats_per_bank()),
        );
        assert!(!has_errors(&diags), "{diags:?}");
    }

    #[test]
    fn tile_pn_matches_the_programming_rule() {
        // Mirror of `program_composed`: pn = ceil(log2(rows)).max(1),
        // computed as usize::BITS - (rows - 1).leading_zeros().
        for rows in [1usize, 2, 3, 4, 255, 256, 257, 577] {
            let runtime = (usize::BITS - (rows.max(1) - 1).leading_zeros()).max(1) as u8;
            assert_eq!(tile_pn(rows), runtime, "rows={rows}");
        }
    }

    #[test]
    fn shared_kernel_mappings_are_accepted_for_every_workload() {
        // Deploy semantics (no replication): whole-network bank copies
        // still alias every tile for bank-parallel workloads, so the
        // shared-kernel legality checks run for real groups here.
        let options =
            CompileOptions { replicate: false, ..CompileOptions::fixed(MappingStrategy::SharedKernel) };
        for bench in MlBench::ALL {
            let spec = bench.spec();
            let target = Target::prime_default();
            let mapping = map_network(&spec, &target.hw, options).unwrap();
            let diags = analyze(&spec, &target, &mapping);
            assert!(
                !has_errors(&diags),
                "{}: unexpected errors:\n{}",
                bench.name(),
                crate::diag::render_human(&diags)
            );
        }
    }

    #[test]
    fn derived_shared_layout_is_always_legal() {
        let options =
            CompileOptions { replicate: true, ..CompileOptions::fixed(MappingStrategy::SharedKernel) };
        let target = Target::prime_default();
        let mapping = map_network(&MlBench::Cnn1.spec(), &target.hw, options).unwrap();
        let groups = shared_layout(&mapping, &target);
        assert!(!groups.is_empty(), "CNN-1 replicates, so sharing must engage");
        assert!(check_shared_layout(&groups, &target).is_empty());
    }

    #[test]
    fn scheme_disagreement_between_aliases_is_p021() {
        let target = Target::prime_default();
        let group = SharedTileGroup {
            layer: 0,
            rows: 26,
            cols: 20,
            tiles: 1,
            refs: 8,
            pn: tile_pn(26) + 1, // an alias assuming the wrong window position
            cell_bits: target.cell_bits,
        };
        let diags = check_shared_layout(&[group], &target);
        assert!(diags.iter().any(|d| d.code == Code::P021), "{diags:?}");
        assert!(has_errors(&diags));
    }

    #[test]
    fn precision_disagreement_between_aliases_is_p021() {
        let target = Target::prime_default();
        let group = SharedTileGroup {
            layer: 1,
            rows: 26,
            cols: 20,
            tiles: 1,
            refs: 8,
            pn: tile_pn(26),
            cell_bits: target.cell_bits + 1,
        };
        let diags = check_shared_layout(&[group], &target);
        assert!(diags.iter().any(|d| d.code == Code::P021), "{diags:?}");
    }

    #[test]
    fn refcount_overflow_is_p022() {
        let mut target = Target::prime_default();
        target.tile_ref_bits = 2; // counter saturates at 3
        let group = SharedTileGroup {
            layer: 0,
            rows: 26,
            cols: 20,
            tiles: 1,
            refs: 4,
            pn: tile_pn(26),
            cell_bits: target.cell_bits,
        };
        let diags = check_shared_layout(&[group], &target);
        assert!(diags.iter().any(|d| d.code == Code::P022), "{diags:?}");
        let zero = SharedTileGroup { refs: 0, ..group };
        let diags = check_shared_layout(&[zero], &target);
        assert!(diags.iter().any(|d| d.code == Code::P022), "{diags:?}");
    }

    #[test]
    fn shared_kernel_fallback_is_reported_as_p023_info() {
        // VGG-D fills the memory with a single copy, so without replicas
        // every tile has one placement: every layer falls back and the
        // verifier says so without erroring.
        let spec = MlBench::VggD.spec();
        let target = Target::prime_default();
        let options =
            CompileOptions { replicate: false, ..CompileOptions::fixed(MappingStrategy::SharedKernel) };
        let mapping = map_network(&spec, &target.hw, options).unwrap();
        let diags = analyze(&spec, &target, &mapping);
        let fallback: Vec<_> =
            diags.iter().filter(|d| d.code == Code::P023).collect();
        assert!(!fallback.is_empty(), "{diags:?}");
        assert!(fallback.iter().all(|d| d.severity == Severity::Info));
        assert!(!has_errors(&diags), "{diags:?}");
    }
}
