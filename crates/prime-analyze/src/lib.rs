//! Static analysis for the PRIME stack: a deployment verifier and a
//! repo-specific source lint sharing one diagnostics engine.
//!
//! PRIME's correctness hinges on invariants that used to live as
//! scattered runtime asserts — crossbar and precision budgets (paper
//! §III-A/§III-D), bank and FF-buffer capacity, strictly-increasing
//! contiguous pipeline stages (§IV-B), and the FF-subarray morphing
//! protocol (§IV-C). This crate checks them *statically*, before a
//! single cycle is simulated:
//!
//! * **Pass 1 — deployment verifier** ([`analyze`]): a pure function
//!   over a [`prime_nn::NetworkSpec`], a [`Target`], and a
//!   [`prime_compiler::NetworkMapping`] returning [`Diagnostic`]s.
//!   `PrimeSystem::deploy` refuses to deploy on any `Error`-severity
//!   finding.
//! * **Pass 2 — source lint** ([`lint_root`], `prime-lint` binary):
//!   token-level enforcement of the repo rules (no allocation in
//!   `*_into` hot kernels, no panic paths in non-test library code, no
//!   `unsafe` anywhere, no lossy `as` casts on the guarded datapath)
//!   with an allowlist for documented residue.
//! * **Pass 3 — program abstract interpretation** ([`analyze_program`]):
//!   interprets the lowered command program (the runner's planned-op
//!   stream) over four abstract domains — FF-buffer region dataflow,
//!   §III-D interval precision propagation, shared-tile aliasing, and
//!   stage-channel deadlock freedom. `PrimeSystem::deploy` gates on it
//!   like Pass 1; [`lower_program`] derives the plan statically for
//!   workload audits.
//!
//! Diagnostics carry stable `P0xx` codes cataloged in DESIGN.md §10;
//! all passes render human-readable and JSON output in a canonical
//! deterministic order ([`sort_diagnostics`]).
//!
//! # Examples
//!
//! ```
//! use prime_analyze::{analyze, has_errors, Target};
//! use prime_compiler::{map_network, CompileOptions};
//! use prime_nn::MlBench;
//!
//! let spec = MlBench::MlpS.spec();
//! let target = Target::prime_default();
//! let mapping = map_network(&spec, &target.hw, CompileOptions::default())?;
//! let diags = analyze(&spec, &target, &mapping);
//! assert!(!has_errors(&diags), "the paper's own workloads must deploy");
//! # Ok::<(), prime_compiler::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diag;
mod intervals;
mod lint;
mod program;
mod verify;

pub use diag::{
    has_errors, render_human, render_json, sort_diagnostics, unservable_model, Code,
    Diagnostic, Severity, Span,
};
pub use intervals::{
    check_intervals, propagate_intervals, static_shift, Interval, LayerInterval,
};
pub use lint::{lint_root, lint_source, AllowEntry, Allowlist};
pub use program::{
    analyze_program, lower_program, ProgramLayer, ProgramOp, ProgramPlan, ProgramStage,
    ProgramTile,
};
pub use verify::{
    analyze, check_pipeline, check_shared_layout, conv_staging, shared_layout, tile_pn,
    ConvStaging, SharedTileGroup, Target, CONV_RESIDENT_BUDGET_DIVISOR,
    LOW_UTILIZATION_THRESHOLD, WINDOW_IO_CHUNK_WORDS,
};
