//! Shared diagnostics engine for both analyzer passes.
//!
//! Every finding — whether from the deployment verifier or the source
//! lint — is a [`Diagnostic`]: a stable [`Code`], a [`Severity`], a
//! [`Span`] locating the finding, and a human-readable message. The
//! codes are part of the repo's public contract: tests pin them, the
//! allowlist references them, and DESIGN.md §10 catalogs them. Do not
//! renumber existing codes; add new ones at the end of each range.

use std::fmt;

use serde::{Deserialize, Serialize};

/// How bad a finding is.
///
/// `Error` findings abort deployment (and fail `prime-lint`); `Warning`
/// findings are reported but do not block; `Info` is purely advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Advisory only.
    Info,
    /// Suspicious but legal; deployment proceeds.
    Warning,
    /// Invariant violation; deployment refuses, lint exits nonzero.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        f.write_str(s)
    }
}

/// Stable diagnostic codes.
///
/// `P001`–`P049` are deployment-verifier codes, `P050`–`P099` are
/// source-lint codes. The full catalog lives in DESIGN.md §10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Code {
    /// Spec / mapping disagreement (layer count or per-layer spec drift).
    P001,
    /// Per-layer crossbar tiling accounting is wrong for the target.
    P002,
    /// Mapping exceeds total ReRAM capacity (mats or banks).
    P003,
    /// A bank is asked to hold more compute mats than it has.
    P004,
    /// Pipeline stage banks are not strictly increasing.
    P005,
    /// Pipeline stages do not cover the layers contiguously.
    P006,
    /// Scale class and pipeline shape disagree.
    P007,
    /// Morphing-state conflict: a mat would be both memory- and compute-mapped.
    P008,
    /// A stage's working set overflows the FF buffer subarray.
    P009,
    /// Composing scheme exceeds the physical MLC / input-driver budget.
    P010,
    /// Po truncation discards result bits (paper §III-D, lossy by design).
    P011,
    /// Positive/negative pair-array accounting is inconsistent.
    P012,
    /// FF utilization is suspiciously low.
    P013,
    /// Utilization accounting is out of range.
    P014,
    /// Layer has no in-memory implementation and will fall back to the host.
    P015,
    /// Mapping is empty.
    P016,
    /// Layer or activation the command runner cannot execute on the device.
    P017,
    /// Conv kernel replication is illegal for the mat geometry (§IV-B).
    P018,
    /// A conv/pool im2col window cannot be staged through the FF buffer.
    P019,
    /// Conv row ring exceeds the residency budget; the runner falls back
    /// to per-pixel window staging for that layer.
    P020,
    /// Aliased shared tiles disagree on composing scheme or cell precision.
    P021,
    /// Shared-tile reference count does not fit the mat-table counter.
    P022,
    /// Layer requested `SharedKernel` but fell back to `ReplicateDense`
    /// (no sharing opportunity).
    P023,
    /// Program-plan op reads FF-buffer words its staging region never
    /// defines (use before stage).
    P024,
    /// Two live program-plan buffer regions overlap (or a live write
    /// lands past the buffer capacity).
    P025,
    /// Resident-conv row ring would clobber a still-live halo row (ring
    /// schedule deviates from the `conv_staging` contract).
    P026,
    /// Interval analysis cannot prove the layer's merged sums fit the
    /// 64-bit precision-control register before the §III-D clamp.
    P027,
    /// Layer's §III-D precision budget is vacuous: the statically
    /// possible output interval collapses to zero after requantization.
    P028,
    /// A write-armed tile is reachable through a shared `PairStore`
    /// alias (copy-on-write has not triggered).
    P029,
    /// Pipeline stage-channel graph can deadlock or stall (broken stage
    /// chain or exhausted recycle credits).
    P030,
    /// A model was registered for serving but its deployment was
    /// rejected; the serving layer must refuse to expose it.
    P031,
    /// Allocation in a `*_into` hot-kernel function.
    P050,
    /// Panic path (`unwrap`/`expect`/`panic!`/…) in non-test library code.
    P051,
    /// `unsafe` code.
    P052,
    /// Allowlist entry matched nothing.
    P053,
    /// Lossy `as` cast in a `*_into` hot kernel or the analog datapath.
    P054,
}

impl Code {
    /// Every code, in catalog order.
    pub const ALL: [Code; 36] = [
        Code::P001,
        Code::P002,
        Code::P003,
        Code::P004,
        Code::P005,
        Code::P006,
        Code::P007,
        Code::P008,
        Code::P009,
        Code::P010,
        Code::P011,
        Code::P012,
        Code::P013,
        Code::P014,
        Code::P015,
        Code::P016,
        Code::P017,
        Code::P018,
        Code::P019,
        Code::P020,
        Code::P021,
        Code::P022,
        Code::P023,
        Code::P024,
        Code::P025,
        Code::P026,
        Code::P027,
        Code::P028,
        Code::P029,
        Code::P030,
        Code::P031,
        Code::P050,
        Code::P051,
        Code::P052,
        Code::P053,
        Code::P054,
    ];

    /// Stable string form (`"P001"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Code::P001 => "P001",
            Code::P002 => "P002",
            Code::P003 => "P003",
            Code::P004 => "P004",
            Code::P005 => "P005",
            Code::P006 => "P006",
            Code::P007 => "P007",
            Code::P008 => "P008",
            Code::P009 => "P009",
            Code::P010 => "P010",
            Code::P011 => "P011",
            Code::P012 => "P012",
            Code::P013 => "P013",
            Code::P014 => "P014",
            Code::P015 => "P015",
            Code::P016 => "P016",
            Code::P017 => "P017",
            Code::P018 => "P018",
            Code::P019 => "P019",
            Code::P020 => "P020",
            Code::P021 => "P021",
            Code::P022 => "P022",
            Code::P023 => "P023",
            Code::P024 => "P024",
            Code::P025 => "P025",
            Code::P026 => "P026",
            Code::P027 => "P027",
            Code::P028 => "P028",
            Code::P029 => "P029",
            Code::P030 => "P030",
            Code::P031 => "P031",
            Code::P050 => "P050",
            Code::P051 => "P051",
            Code::P052 => "P052",
            Code::P053 => "P053",
            Code::P054 => "P054",
        }
    }

    /// Short title used in rendered output.
    pub fn title(self) -> &'static str {
        match self {
            Code::P001 => "spec/mapping mismatch",
            Code::P002 => "layer tiling mismatch",
            Code::P003 => "memory capacity exceeded",
            Code::P004 => "bank capacity exceeded",
            Code::P005 => "pipeline banks not increasing",
            Code::P006 => "pipeline coverage broken",
            Code::P007 => "scale/pipeline inconsistency",
            Code::P008 => "morphing-state conflict",
            Code::P009 => "FF buffer overflow",
            Code::P010 => "precision budget exceeded",
            Code::P011 => "Po truncation loss",
            Code::P012 => "pair-array accounting broken",
            Code::P013 => "low FF utilization",
            Code::P014 => "utilization out of range",
            Code::P015 => "host fallback layer",
            Code::P016 => "empty mapping",
            Code::P017 => "runner-unsupported layer",
            Code::P018 => "illegal kernel replication",
            Code::P019 => "window staging overflow",
            Code::P020 => "conv row ring not resident",
            Code::P021 => "shared-tile scheme mismatch",
            Code::P022 => "shared-tile refcount overflow",
            Code::P023 => "shared-kernel fallback",
            Code::P024 => "use before stage",
            Code::P025 => "overlapping live buffer regions",
            Code::P026 => "ring clobbers live halo row",
            Code::P027 => "merge register overflow unproven",
            Code::P028 => "vacuous precision budget",
            Code::P029 => "write-armed shared tile",
            Code::P030 => "stage graph can deadlock",
            Code::P031 => "model not servable",
            Code::P050 => "allocation in hot kernel",
            Code::P051 => "panic path in library code",
            Code::P052 => "unsafe code",
            Code::P053 => "unused allowlist entry",
            Code::P054 => "lossy cast in guarded datapath",
        }
    }

    /// The severity this code is reported at.
    pub fn severity(self) -> Severity {
        match self {
            Code::P011 | Code::P013 | Code::P015 | Code::P028 | Code::P053 => Severity::Warning,
            Code::P020 | Code::P023 => Severity::Info,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a diagnostic points.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Span {
    /// The mapping / network as a whole.
    Network,
    /// A specific layer of the network spec.
    Layer {
        /// Zero-based layer index.
        index: usize,
        /// Human-readable layer description (e.g. `"fc 784x512"`).
        entity: String,
    },
    /// A specific pipeline stage.
    Stage {
        /// Zero-based stage index.
        index: usize,
        /// Bank the stage is placed on.
        bank: usize,
    },
    /// A source location (lint pass).
    Source {
        /// Repo-relative file path.
        file: String,
        /// One-based line number.
        line: usize,
        /// Enclosing function name, or `"-"` at module scope.
        function: String,
    },
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Span::Network => f.write_str("network"),
            Span::Layer { index, entity } => write!(f, "layer {index} ({entity})"),
            Span::Stage { index, bank } => write!(f, "stage {index} (bank {bank})"),
            Span::Source { file, line, function } => {
                if function == "-" {
                    write!(f, "{file}:{line}")
                } else {
                    write!(f, "{file}:{line} in fn `{function}`")
                }
            }
        }
    }
}

/// One finding from either analyzer pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity (defaults to [`Code::severity`]).
    pub severity: Severity,
    /// Location of the finding.
    pub span: Span,
    /// Human-readable explanation with the concrete numbers involved.
    pub message: String,
}

impl Diagnostic {
    /// Build a diagnostic at the code's default severity.
    pub fn new(code: Code, span: Span, message: impl Into<String>) -> Self {
        Diagnostic { code, severity: code.severity(), span, message: message.into() }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {} ({})",
            self.severity,
            self.code,
            self.span,
            self.message,
            self.code.title()
        )
    }
}

impl Span {
    /// Total order over spans: network first, then layers by index, then
    /// stages by index and bank, then source locations by file and line.
    fn sort_key(&self) -> (u8, usize, usize, &str, &str) {
        match self {
            Span::Network => (0, 0, 0, "", ""),
            Span::Layer { index, entity } => (1, *index, 0, entity.as_str(), ""),
            Span::Stage { index, bank } => (2, *index, *bank, "", ""),
            Span::Source { file, line, function } => (3, *line, 0, file.as_str(), function),
        }
    }
}

/// Sorts diagnostics into the repo's canonical order: by code, then by
/// span (layer/stage index or source location), then by message. Both
/// analyzer passes sort their output through this before returning, so
/// golden fixtures never depend on traversal order.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        a.code
            .as_str()
            .cmp(b.code.as_str())
            .then_with(|| {
                let (ak, ai, ab, af, ag) = a.span.sort_key();
                let (bk, bi, bb, bf, bg) = b.span.sort_key();
                // Source spans order by file before line; structural
                // spans order by index before secondary rank.
                ak.cmp(&bk)
                    .then_with(|| af.cmp(bf))
                    .then_with(|| ai.cmp(&bi))
                    .then_with(|| ab.cmp(&bb))
                    .then_with(|| ag.cmp(bg))
            })
            .then_with(|| a.message.cmp(&b.message))
    });
}

/// Builds the serving-layer diagnostic ([`Code::P031`]) for a model
/// whose deployment was rejected by the verifier: the front-end must
/// refuse to register the model rather than expose a name that can
/// never answer. `rejected` is the deploy refusal's diagnostic list;
/// the P031 message summarizes which codes blocked it so the serving
/// error is self-contained.
pub fn unservable_model(model: &str, rejected: &[Diagnostic]) -> Diagnostic {
    let mut codes: Vec<&str> = rejected
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| d.code.as_str())
        .collect();
    codes.dedup();
    let blockers =
        if codes.is_empty() { "a deploy error".to_string() } else { codes.join(", ") };
    Diagnostic::new(
        Code::P031,
        Span::Network,
        format!("model `{model}` cannot be served: deployment rejected by {blockers}"),
    )
}

/// True when any diagnostic is `Error`-severity.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Render diagnostics one-per-line for terminals, errors first.
pub fn render_human(diags: &[Diagnostic]) -> String {
    let mut sorted: Vec<&Diagnostic> = diags.iter().collect();
    sorted.sort_by(|a, b| b.severity.cmp(&a.severity).then_with(|| a.code.as_str().cmp(b.code.as_str())));
    let mut out = String::new();
    for d in sorted {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out
}

/// Render diagnostics as a JSON array (for `--json` / CI consumption).
pub fn render_json(diags: &[Diagnostic]) -> String {
    serde_json::to_string_pretty(&diags.to_vec()).unwrap_or_else(|_| "[]".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_and_have_unique_strings() {
        let mut seen = std::collections::HashSet::new();
        for code in Code::ALL {
            assert!(seen.insert(code.as_str()), "duplicate code string {code}");
            assert!(!code.title().is_empty());
        }
    }

    #[test]
    fn default_severities() {
        assert_eq!(Code::P011.severity(), Severity::Warning);
        assert_eq!(Code::P001.severity(), Severity::Error);
        assert_eq!(Code::P053.severity(), Severity::Warning);
    }

    #[test]
    fn human_rendering_orders_errors_first() {
        let diags = vec![
            Diagnostic::new(Code::P013, Span::Network, "low util"),
            Diagnostic::new(Code::P004, Span::Stage { index: 1, bank: 3 }, "too many mats"),
        ];
        let text = render_human(&diags);
        let err_pos = text.find("P004").unwrap();
        let warn_pos = text.find("P013").unwrap();
        assert!(err_pos < warn_pos, "errors should sort before warnings:\n{text}");
        assert!(has_errors(&diags));
    }

    #[test]
    fn unservable_model_summarizes_blocking_codes() {
        let rejected = vec![
            Diagnostic::new(Code::P003, Span::Network, "too big"),
            Diagnostic::new(Code::P013, Span::Network, "low util"), // warning: not a blocker
            Diagnostic::new(Code::P009, Span::Stage { index: 0, bank: 0 }, "overflow"),
        ];
        let d = unservable_model("vgg-d", &rejected);
        assert_eq!(d.code, Code::P031);
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("vgg-d"), "{}", d.message);
        assert!(d.message.contains("P003, P009"), "{}", d.message);
        assert!(!d.message.contains("P013"), "{}", d.message);
    }

    #[test]
    fn json_rendering_includes_code_and_span() {
        let diags =
            vec![Diagnostic::new(Code::P009, Span::Stage { index: 0, bank: 0 }, "overflow")];
        let json = render_json(&diags);
        assert!(json.contains("P009"), "{json}");
        assert!(json.contains("overflow"), "{json}");
    }
}
