//! Error type for the memory-system layer.

use std::fmt;

/// Errors raised by memory-geometry, command, and OS-runtime operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// A physical address beyond the installed capacity was used.
    AddressOutOfRange {
        /// The offending byte address.
        addr: u64,
        /// Installed capacity in bytes.
        capacity: u64,
    },
    /// A structure coordinate (chip/bank/subarray/mat/row/col) is invalid.
    CoordinateOutOfRange {
        /// Which coordinate field was invalid.
        field: &'static str,
        /// The offending value.
        value: usize,
        /// Number of valid values.
        limit: usize,
    },
    /// An operation targeted a subarray of the wrong kind (e.g. a compute
    /// command sent to a Mem subarray).
    WrongSubarrayKind {
        /// What the operation required.
        expected: &'static str,
        /// What it found.
        found: &'static str,
    },
    /// A reservation conflict: the addressed FF region is already in the
    /// requested state or is busy computing.
    ReservationConflict {
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::AddressOutOfRange { addr, capacity } => {
                write!(f, "address {addr:#x} out of range for {capacity}-byte memory")
            }
            MemError::CoordinateOutOfRange { field, value, limit } => {
                write!(f, "{field} {value} out of range (limit {limit})")
            }
            MemError::WrongSubarrayKind { expected, found } => {
                write!(f, "operation requires a {expected} subarray but found {found}")
            }
            MemError::ReservationConflict { reason } => {
                write!(f, "reservation conflict: {reason}")
            }
        }
    }
}

impl std::error::Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MemError::CoordinateOutOfRange { field: "bank", value: 9, limit: 8 };
        assert_eq!(e.to_string(), "bank 9 out of range (limit 8)");
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<MemError>();
    }
}
