//! ReRAM main-memory substrate for the PRIME reproduction.
//!
//! Models the memory system PRIME lives in (paper §II-A, §III, Table IV):
//! the 16 GB ReRAM rank geometry with its Mem / full-function / Buffer
//! subarray partition, DDR-style timing, the global row buffer and
//! global-data-line (GDL) contention, the PRIME controller's Table I
//! command set, and the OS run-time support that morphs FF subarrays
//! between memory and computation under page-miss-rate pressure
//! (paper §IV-C).
//!
//! # Examples
//!
//! ```
//! use prime_mem::{MemGeometry, SubarrayKind};
//!
//! let geo = MemGeometry::prime_default();
//! // Per bank: two FF subarrays at the top, the Buffer subarray adjacent.
//! let ff = geo.ff_subarray_indices();
//! assert_eq!(geo.subarray_kind(ff[0])?, SubarrayKind::FullFunction);
//! assert_eq!(geo.subarray_kind(geo.buffer_subarray_index())?, SubarrayKind::Buffer);
//! # Ok::<(), prime_mem::MemError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank;
mod commands;
mod error;
mod geometry;
mod os;
mod rank;
mod timing;
mod wear;

pub use bank::{Bank, BankStats, GlobalRowBuffer, RowBufferOutcome};
pub use commands::{BufAddr, Command, FfAddr, InputSource, MatAddr, MatFunction, MemAddr};
pub use error::MemError;
pub use geometry::{Location, MemGeometry, SubarrayKind};
pub use os::{FfReservationMap, MorphDecision, MorphPolicy, PageMissTracker};
pub use rank::{InterferenceStats, Rank};
pub use timing::MemTiming;
pub use wear::WearLeveler;
