//! Wear leveling for FF-mat reconfiguration.
//!
//! Every time an FF subarray is reconfigured for a new NN, its cells are
//! reprogrammed. ReRAM endurance is high (10^12, §II-A) but not
//! unlimited, and the same paper community addressed the analogous
//! problem for PCM main memory with Start-Gap (ref \[23\], cited by the
//! paper for PCM lifetime). This module applies the same idea at mat
//! granularity: a rotating gap remaps logical FF mats onto physical
//! mats so reconfiguration wear spreads across the whole pool instead of
//! concentrating on the mats a fixed mapping would always pick first.

use serde::{Deserialize, Serialize};

use crate::error::MemError;

/// Start-Gap-style wear leveler over a pool of FF mats.
///
/// One physical mat (the *gap*) is kept unused; every `rotation_period`
/// reconfigurations the gap moves by one, shifting the logical-to-
/// physical mapping. After `total_mats + 1` moves every mat has served
/// in every logical position.
///
/// # Examples
///
/// ```
/// use prime_mem::WearLeveler;
///
/// let mut leveler = WearLeveler::new(8, 1)?;
/// let first = leveler.physical(0)?;
/// for _ in 0..7 {
///     leveler.on_reconfiguration(); // the gap walks the whole pool
/// }
/// assert_ne!(leveler.physical(0)?, first); // the mapping rotated
/// # Ok::<(), prime_mem::MemError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WearLeveler {
    /// Physical mats in the pool (one is always the gap).
    total_mats: usize,
    /// Current gap position (the unoccupied physical mat).
    gap: usize,
    /// Logical-to-physical frame assignment.
    map: Vec<usize>,
    /// Reconfigurations between gap moves.
    rotation_period: u64,
    /// Reconfigurations since the last gap move.
    since_move: u64,
    /// Per-physical-mat reprogram counts.
    writes: Vec<u64>,
}

impl WearLeveler {
    /// Creates a leveler over `total_mats` physical mats, moving the gap
    /// every `rotation_period` reconfigurations.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::CoordinateOutOfRange`] if fewer than two mats
    /// or a zero period is given.
    pub fn new(total_mats: usize, rotation_period: u64) -> Result<Self, MemError> {
        if total_mats < 2 {
            return Err(MemError::CoordinateOutOfRange {
                field: "total_mats",
                value: total_mats,
                limit: 2,
            });
        }
        if rotation_period == 0 {
            return Err(MemError::CoordinateOutOfRange {
                field: "rotation_period",
                value: 0,
                limit: 1,
            });
        }
        Ok(WearLeveler {
            total_mats,
            gap: total_mats - 1,
            map: (0..total_mats - 1).collect(),
            rotation_period,
            since_move: 0,
            writes: vec![0; total_mats],
        })
    }

    /// Infallible constructor sized for `logical_mats` mappable mats: the
    /// pool holds one extra physical mat (the gap) and rotates every
    /// reconfiguration. `logical_mats` is clamped to at least 1 so the
    /// `new` invariants always hold.
    pub fn for_logical_mats(logical_mats: usize) -> Self {
        let total_mats = logical_mats.max(1) + 1;
        WearLeveler {
            total_mats,
            gap: total_mats - 1,
            map: (0..total_mats - 1).collect(),
            rotation_period: 1,
            since_move: 0,
            writes: vec![0; total_mats],
        }
    }

    /// Logical mats available to the mapper (`total_mats - 1`; one is the
    /// gap).
    pub fn logical_mats(&self) -> usize {
        self.total_mats - 1
    }

    /// The physical mat currently backing `logical`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::CoordinateOutOfRange`] for a logical index at
    /// or beyond [`logical_mats`](Self::logical_mats).
    pub fn physical(&self, logical: usize) -> Result<usize, MemError> {
        if logical >= self.logical_mats() {
            return Err(MemError::CoordinateOutOfRange {
                field: "logical mat",
                value: logical,
                limit: self.logical_mats(),
            });
        }
        Ok(self.map[logical])
    }

    /// Records one FF reconfiguration: every logical mat is reprogrammed,
    /// and the gap advances when the period elapses.
    pub fn on_reconfiguration(&mut self) {
        for &physical in &self.map {
            self.writes[physical] += 1;
        }
        self.since_move += 1;
        if self.since_move >= self.rotation_period {
            self.since_move = 0;
            // Start-Gap move: the logical line next to the gap migrates
            // into it (one physical copy), and the gap takes its place.
            let source = if self.gap == 0 { self.total_mats - 1 } else { self.gap - 1 };
            if let Some(line) = self.map.iter_mut().find(|frame| **frame == source) {
                *line = self.gap;
            }
            // The migration itself writes the destination mat once.
            self.writes[self.gap] += 1;
            self.gap = source;
        }
    }

    /// Reprogram count of each physical mat.
    pub fn write_counts(&self) -> &[u64] {
        &self.writes
    }

    /// Wear imbalance: max writes divided by mean writes (1.0 = perfectly
    /// even; a fixed mapping over the same workload gives
    /// `total / logical` at best and unbounded at worst).
    pub fn imbalance(&self) -> f64 {
        let max = *self.writes.iter().max().unwrap_or(&0);
        let sum: u64 = self.writes.iter().sum();
        if sum == 0 {
            1.0
        } else {
            max as f64 / (sum as f64 / self.total_mats as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_parameters() {
        assert!(WearLeveler::new(1, 1).is_err());
        assert!(WearLeveler::new(4, 0).is_err());
        assert!(WearLeveler::new(2, 1).is_ok());
    }

    #[test]
    fn mapping_is_injective_at_all_times() {
        let mut leveler = WearLeveler::new(7, 1).unwrap();
        for _ in 0..30 {
            let mut seen = std::collections::HashSet::new();
            for logical in 0..leveler.logical_mats() {
                let physical = leveler.physical(logical).unwrap();
                assert!(physical < 7);
                assert!(seen.insert(physical), "two logical mats share physical {physical}");
                assert_ne!(physical, leveler.gap, "mapped onto the gap");
            }
            leveler.on_reconfiguration();
        }
    }

    #[test]
    fn rotation_spreads_wear_evenly() {
        let mats = 8;
        let mut leveler = WearLeveler::new(mats, 1).unwrap();
        // Many full rotation cycles.
        for _ in 0..(mats * mats * 4) {
            leveler.on_reconfiguration();
        }
        let imbalance = leveler.imbalance();
        assert!(
            imbalance < 1.2,
            "wear should be near-even with rotation: imbalance {imbalance}, counts {:?}",
            leveler.write_counts()
        );
    }

    #[test]
    fn fixed_mapping_comparison_shows_the_benefit() {
        // Without leveling, a pool where only the first k mats are used
        // concentrates all wear there: imbalance = total/k. With the
        // leveler, the same workload spreads.
        let mats = 16;
        let reconfigs = 16 * 16;
        let mut leveler = WearLeveler::new(mats, 1).unwrap();
        for _ in 0..reconfigs {
            leveler.on_reconfiguration();
        }
        // Fixed mapping baseline: logical == physical, gap unused.
        let fixed_imbalance = mats as f64 / (mats - 1) as f64 * 1.0; // every used mat equal, one idle
        // The leveler should not be *worse* than the trivially even fixed
        // case, and must engage every mat.
        assert!(leveler.write_counts().iter().all(|&w| w > 0), "some mat never used");
        assert!(leveler.imbalance() <= fixed_imbalance + 0.2);
    }

    #[test]
    fn gap_moves_respect_the_period() {
        let mut leveler = WearLeveler::new(4, 3).unwrap();
        let initial = leveler.physical(0).unwrap();
        leveler.on_reconfiguration();
        leveler.on_reconfiguration();
        assert_eq!(leveler.physical(0).unwrap(), initial, "gap moved early");
        leveler.on_reconfiguration();
        // After the third reconfiguration the gap moves.
        assert_ne!(leveler.gap, 3);
    }
}
