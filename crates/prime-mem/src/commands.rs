//! PRIME controller command set (paper Table I).
//!
//! The controller drives two command families. *Datapath-configure*
//! commands set up the multiplexers of the FF subarrays — each is issued
//! once per FF-subarray configuration. *Data-flow control* commands move
//! data between Mem subarrays, the Buffer subarray, and FF subarrays, and
//! are applied throughout the computation phase.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Address of one FF mat: the FF subarray index within the bank and the
/// mat index within the subarray.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MatAddr {
    /// FF subarray index within the bank.
    pub subarray: usize,
    /// Mat index within the subarray.
    pub mat: usize,
}

impl fmt::Display for MatAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mat {}.{}", self.subarray, self.mat)
    }
}

/// Byte address within the Buffer subarray.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BufAddr(pub u64);

impl fmt::Display for BufAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "buf {:#x}", self.0)
    }
}

/// Physical byte address in main memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MemAddr(pub u64);

impl fmt::Display for MemAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mem {:#x}", self.0)
    }
}

/// Address within an FF subarray's input latch / output register space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FfAddr {
    /// The target mat.
    pub mat: MatAddr,
    /// Offset within the mat's latch/register file.
    pub offset: u64,
}

impl fmt::Display for FfAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ff {}.{}+{:#x}", self.mat.subarray, self.mat.mat, self.offset)
    }
}

/// The function an FF mat is configured for (`prog/comp/mem [mat adr][0/1/2]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MatFunction {
    /// Programming synaptic weights into the mat (code 0).
    Program,
    /// NN computation (code 1).
    Compute,
    /// Conventional memory (code 2).
    Memory,
}

impl MatFunction {
    /// The command encoding used in Table I.
    pub fn code(&self) -> u8 {
        match self {
            MatFunction::Program => 0,
            MatFunction::Compute => 1,
            MatFunction::Memory => 2,
        }
    }

    /// Decodes a Table I function code.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(MatFunction::Program),
            1 => Some(MatFunction::Compute),
            2 => Some(MatFunction::Memory),
            _ => None,
        }
    }
}

/// Where a computing mat's inputs come from (`input source [mat adr][0/1]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InputSource {
    /// From the Buffer subarray (code 0).
    Buffer,
    /// Directly from the output of the previous layer's mat, bypassing the
    /// Buffer subarray (code 1).
    PreviousLayer,
}

impl InputSource {
    /// The command encoding used in Table I.
    pub fn code(&self) -> u8 {
        match self {
            InputSource::Buffer => 0,
            InputSource::PreviousLayer => 1,
        }
    }
}

/// A PRIME controller command (paper Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Command {
    /// `prog/comp/mem [mat adr][0/1/2]`: select the mat's function.
    SetFunction {
        /// Target mat.
        mat: MatAddr,
        /// Selected function.
        function: MatFunction,
    },
    /// `bypass sigmoid [mat adr][0/1]`.
    BypassSigmoid {
        /// Target mat.
        mat: MatAddr,
        /// `true` to bypass.
        bypass: bool,
    },
    /// `bypass SA [mat adr][0/1]` (analog output forwarded to the next mat).
    BypassSa {
        /// Target mat.
        mat: MatAddr,
        /// `true` to bypass.
        bypass: bool,
    },
    /// `input source [mat adr][0/1]`.
    SetInputSource {
        /// Target mat.
        mat: MatAddr,
        /// Selected source.
        source: InputSource,
    },
    /// `fetch [mem adr] to [buf adr]`: Mem subarray -> Buffer subarray.
    Fetch {
        /// Source in main memory.
        from: MemAddr,
        /// Destination in the Buffer subarray.
        to: BufAddr,
        /// Transfer size in bytes.
        bytes: u64,
    },
    /// `commit [buf adr] to [mem adr]`: Buffer subarray -> Mem subarray.
    Commit {
        /// Source in the Buffer subarray.
        from: BufAddr,
        /// Destination in main memory.
        to: MemAddr,
        /// Transfer size in bytes.
        bytes: u64,
    },
    /// `load [buf adr] to [FF adr]`: Buffer subarray -> FF input latch.
    Load {
        /// Source in the Buffer subarray.
        from: BufAddr,
        /// Destination latch address.
        to: FfAddr,
        /// Transfer size in bytes.
        bytes: u64,
    },
    /// `store [FF adr] to [buf adr]`: FF output registers -> Buffer subarray.
    Store {
        /// Source output-register address.
        from: FfAddr,
        /// Destination in the Buffer subarray.
        to: BufAddr,
        /// Transfer size in bytes.
        bytes: u64,
    },
}

impl Command {
    /// Whether this is a datapath-configure command (issued once per FF
    /// configuration) as opposed to a data-flow command (issued throughout
    /// the computation phase).
    pub fn is_datapath_configure(&self) -> bool {
        matches!(
            self,
            Command::SetFunction { .. }
                | Command::BypassSigmoid { .. }
                | Command::BypassSa { .. }
                | Command::SetInputSource { .. }
        )
    }
}

impl Command {
    /// Parses the Table I textual syntax produced by [`Command`]'s
    /// `Display` implementation, e.g.
    /// `prog/comp/mem [mat 1.7][0]` or `fetch [mem 0x100] to [buf 0x20] (256 B)`.
    ///
    /// Returns `None` for anything that is not a well-formed command.
    pub fn parse(text: &str) -> Option<Command> {
        let text = text.trim();
        fn mat_addr(token: &str) -> Option<MatAddr> {
            // "mat 1.7"
            let rest = token.strip_prefix("mat ")?;
            let (sub, mat) = rest.split_once('.')?;
            Some(MatAddr { subarray: sub.parse().ok()?, mat: mat.parse().ok()? })
        }
        fn hex(token: &str, prefix: &str) -> Option<u64> {
            let rest = token.strip_prefix(prefix)?.trim().strip_prefix("0x")?;
            u64::from_str_radix(rest, 16).ok()
        }
        fn bracketed(text: &str) -> Vec<&str> {
            let mut out = Vec::new();
            let mut rest = text;
            while let Some(start) = rest.find('[') {
                let Some(end) = rest[start..].find(']') else { break };
                out.push(&rest[start + 1..start + end]);
                rest = &rest[start + end + 1..];
            }
            out
        }
        fn bytes_of(text: &str) -> Option<u64> {
            // "(256 B)" suffix
            let start = text.rfind('(')?;
            let inner = text[start + 1..].strip_suffix(')')?;
            inner.strip_suffix(" B")?.trim().parse().ok()
        }
        let args = bracketed(text);
        if let Some(rest) = text.strip_prefix("prog/comp/mem ") {
            let _ = rest;
            let (mat, code) = (mat_addr(args.first()?)?, args.get(1)?.parse::<u8>().ok()?);
            return Some(Command::SetFunction { mat, function: MatFunction::from_code(code)? });
        }
        if text.starts_with("bypass sigmoid ") {
            let (mat, flag) = (mat_addr(args.first()?)?, args.get(1)? == &"1");
            return Some(Command::BypassSigmoid { mat, bypass: flag });
        }
        if text.starts_with("bypass SA ") {
            let (mat, flag) = (mat_addr(args.first()?)?, args.get(1)? == &"1");
            return Some(Command::BypassSa { mat, bypass: flag });
        }
        if text.starts_with("input source ") {
            let mat = mat_addr(args.first()?)?;
            let source = match *args.get(1)? {
                "0" => InputSource::Buffer,
                "1" => InputSource::PreviousLayer,
                _ => return None,
            };
            return Some(Command::SetInputSource { mat, source });
        }
        if text.starts_with("fetch ") {
            return Some(Command::Fetch {
                from: MemAddr(hex(args.first()?, "mem")?),
                to: BufAddr(hex(args.get(1)?, "buf")?),
                bytes: bytes_of(text)?,
            });
        }
        if text.starts_with("commit ") {
            return Some(Command::Commit {
                from: BufAddr(hex(args.first()?, "buf")?),
                to: MemAddr(hex(args.get(1)?, "mem")?),
                bytes: bytes_of(text)?,
            });
        }
        if text.starts_with("load ") {
            // "load [buf 0x0] to [ff 0.0+0x0] (24 B)"
            let from = BufAddr(hex(args.first()?, "buf")?);
            let ff = args.get(1)?.strip_prefix("ff ")?;
            let (mat_part, offset_part) = ff.split_once('+')?;
            let (sub, mat) = mat_part.split_once('.')?;
            let offset = u64::from_str_radix(offset_part.strip_prefix("0x")?, 16).ok()?;
            return Some(Command::Load {
                from,
                to: FfAddr {
                    mat: MatAddr { subarray: sub.parse().ok()?, mat: mat.parse().ok()? },
                    offset,
                },
                bytes: bytes_of(text)?,
            });
        }
        if text.starts_with("store ") {
            let ff = args.first()?.strip_prefix("ff ")?;
            let (mat_part, offset_part) = ff.split_once('+')?;
            let (sub, mat) = mat_part.split_once('.')?;
            let offset = u64::from_str_radix(offset_part.strip_prefix("0x")?, 16).ok()?;
            return Some(Command::Store {
                from: FfAddr {
                    mat: MatAddr { subarray: sub.parse().ok()?, mat: mat.parse().ok()? },
                    offset,
                },
                to: BufAddr(hex(args.get(1)?, "buf")?),
                bytes: bytes_of(text)?,
            });
        }
        None
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::SetFunction { mat, function } => {
                write!(f, "prog/comp/mem [{mat}][{}]", function.code())
            }
            Command::BypassSigmoid { mat, bypass } => {
                write!(f, "bypass sigmoid [{mat}][{}]", u8::from(*bypass))
            }
            Command::BypassSa { mat, bypass } => {
                write!(f, "bypass SA [{mat}][{}]", u8::from(*bypass))
            }
            Command::SetInputSource { mat, source } => {
                write!(f, "input source [{mat}][{}]", source.code())
            }
            Command::Fetch { from, to, bytes } => write!(f, "fetch [{from}] to [{to}] ({bytes} B)"),
            Command::Commit { from, to, bytes } => {
                write!(f, "commit [{from}] to [{to}] ({bytes} B)")
            }
            Command::Load { from, to, bytes } => write!(f, "load [{from}] to [{to}] ({bytes} B)"),
            Command::Store { from, to, bytes } => write!(f, "store [{from}] to [{to}] ({bytes} B)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_codes_round_trip() {
        for fun in [MatFunction::Program, MatFunction::Compute, MatFunction::Memory] {
            assert_eq!(MatFunction::from_code(fun.code()), Some(fun));
        }
        assert_eq!(MatFunction::from_code(3), None);
    }

    #[test]
    fn command_families_partition_table_i() {
        let mat = MatAddr { subarray: 0, mat: 3 };
        let configure = [
            Command::SetFunction { mat, function: MatFunction::Compute },
            Command::BypassSigmoid { mat, bypass: true },
            Command::BypassSa { mat, bypass: false },
            Command::SetInputSource { mat, source: InputSource::Buffer },
        ];
        let flow = [
            Command::Fetch { from: MemAddr(0), to: BufAddr(0), bytes: 64 },
            Command::Commit { from: BufAddr(0), to: MemAddr(0), bytes: 64 },
            Command::Load { from: BufAddr(0), to: FfAddr { mat, offset: 0 }, bytes: 64 },
            Command::Store { from: FfAddr { mat, offset: 0 }, to: BufAddr(0), bytes: 64 },
        ];
        assert!(configure.iter().all(Command::is_datapath_configure));
        assert!(flow.iter().all(|c| !c.is_datapath_configure()));
    }

    #[test]
    fn parse_round_trips_every_command_kind() {
        let mat = MatAddr { subarray: 2, mat: 9 };
        let commands = [
            Command::SetFunction { mat, function: MatFunction::Program },
            Command::SetFunction { mat, function: MatFunction::Compute },
            Command::SetFunction { mat, function: MatFunction::Memory },
            Command::BypassSigmoid { mat, bypass: true },
            Command::BypassSa { mat, bypass: false },
            Command::SetInputSource { mat, source: InputSource::PreviousLayer },
            Command::Fetch { from: MemAddr(0x1a0), to: BufAddr(0x40), bytes: 512 },
            Command::Commit { from: BufAddr(0x40), to: MemAddr(0x1a0), bytes: 512 },
            Command::Load { from: BufAddr(0), to: FfAddr { mat, offset: 0x10 }, bytes: 64 },
            Command::Store { from: FfAddr { mat, offset: 0x10 }, to: BufAddr(8), bytes: 64 },
        ];
        for cmd in commands {
            let text = cmd.to_string();
            assert_eq!(Command::parse(&text), Some(cmd), "failed on `{text}`");
        }
    }

    #[test]
    fn parse_rejects_malformed_text() {
        for bad in ["", "nonsense", "fetch [mem zz] to [buf 0x0] (8 B)", "prog/comp/mem [mat 1.1][7]"] {
            assert_eq!(Command::parse(bad), None, "accepted `{bad}`");
        }
    }

    #[test]
    fn display_matches_table_syntax() {
        let mat = MatAddr { subarray: 1, mat: 7 };
        let cmd = Command::SetFunction { mat, function: MatFunction::Program };
        assert_eq!(cmd.to_string(), "prog/comp/mem [mat 1.7][0]");
        let cmd = Command::Fetch { from: MemAddr(0x100), to: BufAddr(0x20), bytes: 256 };
        assert_eq!(cmd.to_string(), "fetch [mem 0x100] to [buf 0x20] (256 B)");
    }
}
