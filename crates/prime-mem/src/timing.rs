//! Memory timing model.
//!
//! Timing parameters follow Table IV of the paper: a 16 GB ReRAM main
//! memory behind a 533 MHz IO bus with
//! `tRCD-tCL-tRP-tWR = 22.5-9.8-0.5-41.4 ns` — the performance-optimized
//! ReRAM design of Xu et al. \[20\] (near-DRAM reads, ~5x slower writes,
//! negligible precharge because ReRAM reads are non-destructive).

use serde::{Deserialize, Serialize};

/// DDR-style timing parameters of the ReRAM main memory.
///
/// # Examples
///
/// ```
/// use prime_mem::MemTiming;
///
/// let t = MemTiming::prime_default();
/// assert!(t.row_read_ns() < t.row_write_ns());
/// assert!(t.bus_bandwidth_gbps() > 8.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemTiming {
    /// Row-to-column delay (activate), ns.
    pub t_rcd_ns: f64,
    /// Column access (CAS) latency, ns.
    pub t_cl_ns: f64,
    /// Row precharge, ns (tiny: ReRAM reads are non-destructive).
    pub t_rp_ns: f64,
    /// Write recovery, ns (ReRAM writes are slow).
    pub t_wr_ns: f64,
    /// IO bus clock in MHz (DDR: two transfers per cycle).
    pub bus_mhz: f64,
    /// IO bus width in bits (x64 rank interface).
    pub bus_bits: u32,
    /// Width of the global data lines between a subarray and the global
    /// row buffer, in bits.
    pub gdl_bits: u32,
    /// One GDL transfer beat, ns.
    pub gdl_beat_ns: f64,
}

impl MemTiming {
    /// Table IV values.
    pub fn prime_default() -> Self {
        MemTiming {
            t_rcd_ns: 22.5,
            t_cl_ns: 9.8,
            t_rp_ns: 0.5,
            t_wr_ns: 41.4,
            bus_mhz: 533.0,
            bus_bits: 64,
            gdl_bits: 256,
            gdl_beat_ns: 2.0,
        }
    }

    /// Latency of a row activation plus column read (row-buffer miss).
    pub fn row_read_ns(&self) -> f64 {
        self.t_rcd_ns + self.t_cl_ns
    }

    /// Latency of a column read that hits the open row.
    pub fn row_hit_read_ns(&self) -> f64 {
        self.t_cl_ns
    }

    /// Latency of a full row write (activate + write recovery).
    pub fn row_write_ns(&self) -> f64 {
        self.t_rcd_ns + self.t_wr_ns
    }

    /// Latency to close a row (precharge).
    pub fn precharge_ns(&self) -> f64 {
        self.t_rp_ns
    }

    /// Peak off-chip bus bandwidth in GB/s (DDR: 2 transfers per clock).
    pub fn bus_bandwidth_gbps(&self) -> f64 {
        self.bus_mhz * 1e6 * 2.0 * f64::from(self.bus_bits) / 8.0 / 1e9
    }

    /// Time to move `bytes` over the off-chip bus, ns.
    pub fn bus_transfer_ns(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bus_bandwidth_gbps()
    }

    /// Time to move `bytes` over the in-bank global data lines, ns. This
    /// is the resource both the Mem-subarray<->row-buffer path and the
    /// row-buffer<->Buffer-subarray path contend for (paper §III-B: the
    /// two steps are serialized on the GDL).
    pub fn gdl_transfer_ns(&self, bytes: u64) -> f64 {
        let beats = (bytes * 8).div_ceil(u64::from(self.gdl_bits));
        beats as f64 * self.gdl_beat_ns
    }

    /// Latency for the two-step fetch that stages FF input data: Mem
    /// subarray -> global row buffer -> Buffer subarray (serial on the
    /// GDL), for `bytes` of data.
    pub fn fetch_to_buffer_ns(&self, bytes: u64) -> f64 {
        self.row_read_ns() + self.gdl_transfer_ns(bytes) // mem -> row buffer
            + self.gdl_transfer_ns(bytes) // row buffer -> buffer subarray
            + self.row_write_ns() // restore into buffer subarray cells
    }

    /// Latency for committing FF output data back: Buffer subarray ->
    /// global row buffer -> Mem subarray.
    pub fn commit_from_buffer_ns(&self, bytes: u64) -> f64 {
        self.row_read_ns()
            + 2.0 * self.gdl_transfer_ns(bytes)
            + self.row_write_ns()
    }
}

impl Default for MemTiming {
    fn default() -> Self {
        MemTiming::prime_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_values() {
        let t = MemTiming::prime_default();
        assert!((t.t_rcd_ns - 22.5).abs() < 1e-12);
        assert!((t.t_cl_ns - 9.8).abs() < 1e-12);
        assert!((t.t_rp_ns - 0.5).abs() < 1e-12);
        assert!((t.t_wr_ns - 41.4).abs() < 1e-12);
    }

    #[test]
    fn bus_bandwidth_is_ddr_533_x64() {
        let t = MemTiming::prime_default();
        // 533 MHz x 2 x 8 bytes = 8.528 GB/s.
        assert!((t.bus_bandwidth_gbps() - 8.528).abs() < 1e-3);
    }

    #[test]
    fn reads_hit_faster_than_miss() {
        let t = MemTiming::prime_default();
        assert!(t.row_hit_read_ns() < t.row_read_ns());
    }

    #[test]
    fn gdl_transfer_rounds_up_to_beats() {
        let t = MemTiming::prime_default();
        // 1 byte still takes a full beat.
        assert!((t.gdl_transfer_ns(1) - t.gdl_beat_ns).abs() < 1e-12);
        // 64 bytes = 512 bits = 2 beats of 256 bits.
        assert!((t.gdl_transfer_ns(64) - 2.0 * t.gdl_beat_ns).abs() < 1e-12);
    }

    #[test]
    fn fetch_is_serial_on_gdl() {
        let t = MemTiming::prime_default();
        let one_step = t.gdl_transfer_ns(256);
        let fetch = t.fetch_to_buffer_ns(256);
        assert!(fetch >= 2.0 * one_step, "fetch must pay the GDL twice");
    }

    #[test]
    fn bus_transfer_scales_linearly() {
        let t = MemTiming::prime_default();
        let a = t.bus_transfer_ns(1024);
        let b = t.bus_transfer_ns(2048);
        assert!((b - 2.0 * a).abs() < 1e-9);
    }
}
