//! Stateful bank model: global row buffer, access accounting, and GDL
//! occupancy.
//!
//! Each bank owns a global row buffer; FF subarrays talk to the Buffer
//! subarray over private data ports, so CPU memory traffic to Mem
//! subarrays proceeds in parallel with FF computation (paper §III-B).
//! The global data lines (GDL) are the shared resource that serializes
//! Mem-subarray <-> row-buffer and row-buffer <-> Buffer-subarray moves.

use serde::{Deserialize, Serialize};

use crate::error::MemError;
use crate::geometry::{Location, MemGeometry, SubarrayKind};
use crate::timing::MemTiming;

/// Outcome of a row-buffer access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RowBufferOutcome {
    /// The addressed row was already open.
    Hit,
    /// A different (or no) row was open; activation was required.
    Miss,
}

/// The bank's global row buffer: tracks the single open row.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalRowBuffer {
    open: Option<(usize, usize, usize)>,
}

impl GlobalRowBuffer {
    /// Creates a row buffer with no open row.
    pub fn new() -> Self {
        GlobalRowBuffer { open: None }
    }

    /// Accesses `(subarray, mat, row)`, opening it if necessary.
    pub fn access(&mut self, subarray: usize, mat: usize, row: usize) -> RowBufferOutcome {
        let key = (subarray, mat, row);
        if self.open == Some(key) {
            RowBufferOutcome::Hit
        } else {
            self.open = Some(key);
            RowBufferOutcome::Miss
        }
    }

    /// The currently open `(subarray, mat, row)`, if any.
    pub fn open_row(&self) -> Option<(usize, usize, usize)> {
        self.open
    }

    /// Closes the open row (precharge).
    pub fn precharge(&mut self) {
        self.open = None;
    }
}

/// Per-bank access statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BankStats {
    /// Reads served.
    pub reads: u64,
    /// Writes served.
    pub writes: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer misses.
    pub row_misses: u64,
    /// Total nanoseconds the GDL was occupied.
    pub gdl_busy_ns: f64,
    /// Total access latency accumulated, ns.
    pub total_latency_ns: f64,
}

impl BankStats {
    /// Row-buffer hit rate over all accesses (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

/// A bank of the ReRAM main memory with its row buffer and statistics.
///
/// # Examples
///
/// ```
/// use prime_mem::{Bank, MemGeometry, MemTiming};
///
/// let geo = MemGeometry::small();
/// let mut bank = Bank::new(geo, MemTiming::prime_default());
/// let loc = geo.decode(0)?;
/// let first = bank.access(loc, false)?;  // row miss
/// let second = bank.access(loc, false)?; // row hit
/// assert!(second < first);
/// # Ok::<(), prime_mem::MemError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bank {
    geometry: MemGeometry,
    timing: MemTiming,
    row_buffer: GlobalRowBuffer,
    stats: BankStats,
}

impl Bank {
    /// Creates an idle bank.
    pub fn new(geometry: MemGeometry, timing: MemTiming) -> Self {
        Bank { geometry, timing, row_buffer: GlobalRowBuffer::new(), stats: BankStats::default() }
    }

    /// The bank's geometry.
    pub fn geometry(&self) -> &MemGeometry {
        &self.geometry
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &BankStats {
        &self.stats
    }

    /// Resets statistics (the row buffer keeps its open row).
    pub fn reset_stats(&mut self) {
        self.stats = BankStats::default();
    }

    /// Performs one memory access at `loc` and returns its latency in ns.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::CoordinateOutOfRange`] if the location does not
    /// belong to this bank's geometry.
    pub fn access(&mut self, loc: Location, is_write: bool) -> Result<f64, MemError> {
        if loc.subarray >= self.geometry.subarrays_per_bank {
            return Err(MemError::CoordinateOutOfRange {
                field: "subarray",
                value: loc.subarray,
                limit: self.geometry.subarrays_per_bank,
            });
        }
        let outcome = self.row_buffer.access(loc.subarray, loc.mat, loc.row);
        let latency = match (outcome, is_write) {
            (RowBufferOutcome::Hit, false) => {
                self.stats.row_hits += 1;
                self.timing.row_hit_read_ns()
            }
            (RowBufferOutcome::Miss, false) => {
                self.stats.row_misses += 1;
                self.timing.row_read_ns()
            }
            (RowBufferOutcome::Hit, true) => {
                self.stats.row_hits += 1;
                self.timing.t_wr_ns
            }
            (RowBufferOutcome::Miss, true) => {
                self.stats.row_misses += 1;
                self.timing.row_write_ns()
            }
        };
        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        self.stats.total_latency_ns += latency;
        Ok(latency)
    }

    /// Stages `bytes` from a Mem subarray into the Buffer subarray (the
    /// `fetch` data-flow command), returning the latency and charging the
    /// GDL for both serial transfer steps.
    pub fn fetch_to_buffer(&mut self, bytes: u64) -> f64 {
        let latency = self.timing.fetch_to_buffer_ns(bytes);
        self.stats.gdl_busy_ns += 2.0 * self.timing.gdl_transfer_ns(bytes);
        self.stats.total_latency_ns += latency;
        latency
    }

    /// Writes `bytes` from the Buffer subarray back to a Mem subarray (the
    /// `commit` data-flow command).
    pub fn commit_from_buffer(&mut self, bytes: u64) -> f64 {
        let latency = self.timing.commit_from_buffer_ns(bytes);
        self.stats.gdl_busy_ns += 2.0 * self.timing.gdl_transfer_ns(bytes);
        self.stats.total_latency_ns += latency;
        latency
    }

    /// Whether an access at `loc` contends with FF<->Buffer traffic: only
    /// Buffer-subarray accesses do — Mem-subarray traffic and FF
    /// computation proceed in parallel (paper §III-B).
    pub fn contends_with_ff(&self, loc: Location) -> Result<bool, MemError> {
        Ok(self.geometry.subarray_kind(loc.subarray)? == SubarrayKind::Buffer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_bank() -> Bank {
        Bank::new(MemGeometry::small(), MemTiming::prime_default())
    }

    #[test]
    fn row_buffer_tracks_open_row() {
        let mut rb = GlobalRowBuffer::new();
        assert_eq!(rb.access(0, 0, 5), RowBufferOutcome::Miss);
        assert_eq!(rb.access(0, 0, 5), RowBufferOutcome::Hit);
        assert_eq!(rb.access(0, 1, 5), RowBufferOutcome::Miss);
        rb.precharge();
        assert_eq!(rb.open_row(), None);
        assert_eq!(rb.access(0, 1, 5), RowBufferOutcome::Miss);
    }

    #[test]
    fn hits_are_cheaper_than_misses() {
        let mut bank = small_bank();
        let loc = bank.geometry().decode(0).unwrap();
        let miss = bank.access(loc, false).unwrap();
        let hit = bank.access(loc, false).unwrap();
        assert!(hit < miss);
        assert_eq!(bank.stats().row_hits, 1);
        assert_eq!(bank.stats().row_misses, 1);
        assert_eq!(bank.stats().reads, 2);
    }

    #[test]
    fn writes_are_slower_than_reads() {
        let mut bank = small_bank();
        let loc = bank.geometry().decode(0).unwrap();
        let read_miss = bank.access(loc, false).unwrap();
        bank.row_buffer.precharge();
        let write_miss = bank.access(loc, true).unwrap();
        assert!(write_miss > read_miss);
    }

    #[test]
    fn hit_rate_reflects_access_pattern() {
        let mut bank = small_bank();
        let loc = bank.geometry().decode(0).unwrap();
        for _ in 0..10 {
            bank.access(loc, false).unwrap();
        }
        assert!((bank.stats().hit_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn fetch_charges_gdl_twice() {
        let mut bank = small_bank();
        let t = MemTiming::prime_default();
        bank.fetch_to_buffer(256);
        assert!((bank.stats().gdl_busy_ns - 2.0 * t.gdl_transfer_ns(256)).abs() < 1e-9);
    }

    #[test]
    fn only_buffer_subarray_contends_with_ff() {
        let bank = small_bank();
        let geo = bank.geometry();
        let buf_idx = geo.buffer_subarray_index();
        let mem_loc = Location { chip: 0, bank: 0, subarray: 0, mat: 0, row: 0, col: 0 };
        let buf_loc = Location { chip: 0, bank: 0, subarray: buf_idx, mat: 0, row: 0, col: 0 };
        assert!(!bank.contends_with_ff(mem_loc).unwrap());
        assert!(bank.contends_with_ff(buf_loc).unwrap());
    }

    #[test]
    fn access_rejects_foreign_subarray() {
        let mut bank = small_bank();
        let loc = Location { chip: 0, bank: 0, subarray: 99, mat: 0, row: 0, col: 0 };
        assert!(bank.access(loc, false).is_err());
    }
}
