//! Physical organization of the ReRAM main memory.
//!
//! The evaluated configuration (paper Table IV) is a 16 GB ReRAM main
//! memory with 8 chips per rank and 8 banks per chip. Each PRIME bank
//! holds subarrays built from *mats*, where a mat is a pair of 256x256
//! crossbar arrays (positive and negative weights in computation mode,
//! plain storage in memory mode). Per bank, two subarrays are
//! full-function (FF) and one — the mem subarray adjacent to the FF
//! pair — serves as the Buffer subarray (paper §V-A).

use serde::{Deserialize, Serialize};

use crate::error::MemError;

/// Kinds of subarrays in a PRIME bank (paper Fig. 3(c)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SubarrayKind {
    /// Data storage only — a conventional memory subarray.
    Mem,
    /// Full-function: morphable between memory and NN computation.
    FullFunction,
    /// The mem subarray closest to the FF pair, used to buffer FF
    /// input/output data (still usable as normal memory when idle).
    Buffer,
}

impl SubarrayKind {
    /// Short human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            SubarrayKind::Mem => "mem",
            SubarrayKind::FullFunction => "full-function",
            SubarrayKind::Buffer => "buffer",
        }
    }
}

/// Geometry of the PRIME main memory.
///
/// # Examples
///
/// ```
/// use prime_mem::MemGeometry;
///
/// let geo = MemGeometry::prime_default();
/// assert_eq!(geo.total_banks(), 64);
/// assert_eq!(geo.capacity_bytes(), 16 << 30);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemGeometry {
    /// Chips per rank.
    pub chips: usize,
    /// Banks per chip.
    pub banks_per_chip: usize,
    /// Subarrays per bank (including FF and Buffer subarrays).
    pub subarrays_per_bank: usize,
    /// FF subarrays per bank.
    pub ff_subarrays_per_bank: usize,
    /// Buffer subarrays per bank.
    pub buffer_subarrays_per_bank: usize,
    /// Mats per subarray.
    pub mats_per_subarray: usize,
    /// Rows (wordlines) per mat.
    pub mat_rows: usize,
    /// Columns (bitlines) per mat.
    pub mat_cols: usize,
}

impl MemGeometry {
    /// The evaluated 16 GB configuration: 8 chips x 8 banks, 256
    /// subarrays of 64 crossbar-pair mats per bank, with 2 FF and 1
    /// Buffer subarray per bank. With both FF subarrays of every bank
    /// holding weights, the maximal mappable NN is ~2.7x10^8 synapses —
    /// the figure the paper quotes in §IV-B1.
    pub fn prime_default() -> Self {
        MemGeometry {
            chips: 8,
            banks_per_chip: 8,
            subarrays_per_bank: 256,
            ff_subarrays_per_bank: 2,
            buffer_subarrays_per_bank: 1,
            mats_per_subarray: 64,
            mat_rows: 256,
            mat_cols: 256,
        }
    }

    /// A small geometry for tests and examples: 2 chips x 2 banks, 8
    /// subarrays of 4 mats.
    pub fn small() -> Self {
        MemGeometry {
            chips: 2,
            banks_per_chip: 2,
            subarrays_per_bank: 8,
            ff_subarrays_per_bank: 2,
            buffer_subarrays_per_bank: 1,
            mats_per_subarray: 4,
            mat_rows: 256,
            mat_cols: 256,
        }
    }

    /// Total banks in the rank (`chips * banks_per_chip`) — PRIME's NPU
    /// count for bank-level parallelism (64 in the paper).
    pub fn total_banks(&self) -> usize {
        self.chips * self.banks_per_chip
    }

    /// Bits stored per mat in memory (SLC) mode: both crossbars of the
    /// pair store data.
    pub fn mat_bits(&self) -> u64 {
        2 * (self.mat_rows * self.mat_cols) as u64
    }

    /// Bytes per subarray in memory mode.
    pub fn subarray_bytes(&self) -> u64 {
        self.mats_per_subarray as u64 * self.mat_bits() / 8
    }

    /// Bytes per bank in memory mode.
    pub fn bank_bytes(&self) -> u64 {
        self.subarrays_per_bank as u64 * self.subarray_bytes()
    }

    /// Installed capacity in bytes with every subarray in memory mode.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_banks() as u64 * self.bank_bytes()
    }

    /// Capacity lost when all FF subarrays compute (the morphable
    /// memory/accelerator trade-off).
    pub fn ff_reserved_bytes(&self) -> u64 {
        (self.total_banks() * self.ff_subarrays_per_bank) as u64 * self.subarray_bytes()
    }

    /// The subarray kind at `subarray_index` within a bank. FF subarrays
    /// occupy the highest indices; the Buffer subarray sits immediately
    /// below them (it is the closest mem subarray, paper §III-B).
    pub fn subarray_kind(&self, subarray_index: usize) -> Result<SubarrayKind, MemError> {
        if subarray_index >= self.subarrays_per_bank {
            return Err(MemError::CoordinateOutOfRange {
                field: "subarray",
                value: subarray_index,
                limit: self.subarrays_per_bank,
            });
        }
        let ff_start = self.subarrays_per_bank - self.ff_subarrays_per_bank;
        let buf_start = ff_start - self.buffer_subarrays_per_bank;
        Ok(if subarray_index >= ff_start {
            SubarrayKind::FullFunction
        } else if subarray_index >= buf_start {
            SubarrayKind::Buffer
        } else {
            SubarrayKind::Mem
        })
    }

    /// Indices of the FF subarrays within each bank.
    pub fn ff_subarray_indices(&self) -> Vec<usize> {
        let ff_start = self.subarrays_per_bank - self.ff_subarrays_per_bank;
        (ff_start..self.subarrays_per_bank).collect()
    }

    /// Index of the (first) Buffer subarray within each bank.
    pub fn buffer_subarray_index(&self) -> usize {
        self.subarrays_per_bank - self.ff_subarrays_per_bank - self.buffer_subarrays_per_bank
    }

    /// Composed synaptic weights per FF mat: the sign lives in the
    /// positive/negative crossbar split and each 8-bit weight magnitude
    /// occupies two adjacent 4-bit cells, so a 256x256 pair holds
    /// 256 x 128 composed synapses.
    pub fn synapses_per_mat(&self) -> u64 {
        (self.mat_rows * self.mat_cols / 2) as u64
    }

    /// Maximum synapses mappable if every FF mat in the memory holds
    /// weights (paper §IV-B1 quotes ~2.7x10^8 for the default geometry).
    pub fn max_synapses(&self) -> u64 {
        self.total_banks() as u64
            * self.ff_subarrays_per_bank as u64
            * self.mats_per_subarray as u64
            * self.synapses_per_mat()
    }
}

impl Default for MemGeometry {
    fn default() -> Self {
        MemGeometry::prime_default()
    }
}

/// Fully decoded physical location of a memory word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Location {
    /// Chip index within the rank.
    pub chip: usize,
    /// Bank index within the chip.
    pub bank: usize,
    /// Subarray index within the bank.
    pub subarray: usize,
    /// Mat index within the subarray.
    pub mat: usize,
    /// Row within the mat.
    pub row: usize,
    /// Column (bit) within the row.
    pub col: usize,
}

impl MemGeometry {
    /// Decodes a bit address into its physical location. The mapping is
    /// bank-interleaved at row granularity so consecutive rows spread
    /// across banks — the layout the OS exploits for bank-level
    /// parallelism (paper §IV-B2).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::AddressOutOfRange`] past the installed capacity.
    pub fn decode(&self, bit_addr: u64) -> Result<Location, MemError> {
        let capacity_bits = self.capacity_bytes() * 8;
        if bit_addr >= capacity_bits {
            return Err(MemError::AddressOutOfRange {
                addr: bit_addr,
                capacity: self.capacity_bytes(),
            });
        }
        // A memory-mode mat row spans both crossbars of the pair.
        let row_bits = 2 * self.mat_cols as u64;
        let col = (bit_addr % row_bits) as usize;
        let rest = bit_addr / row_bits;
        let bank_linear = (rest % self.total_banks() as u64) as usize;
        let rest = rest / self.total_banks() as u64;
        let row = (rest % self.mat_rows as u64) as usize;
        let rest = rest / self.mat_rows as u64;
        let mat = (rest % self.mats_per_subarray as u64) as usize;
        let subarray = (rest / self.mats_per_subarray as u64) as usize;
        Ok(Location {
            chip: bank_linear / self.banks_per_chip,
            bank: bank_linear % self.banks_per_chip,
            subarray,
            mat,
            row,
            col,
        })
    }

    /// Encodes a physical location back to its bit address (inverse of
    /// [`decode`](Self::decode)).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::CoordinateOutOfRange`] for any invalid field.
    pub fn encode(&self, loc: Location) -> Result<u64, MemError> {
        let check = |field, value, limit| {
            if value >= limit {
                Err(MemError::CoordinateOutOfRange { field, value, limit })
            } else {
                Ok(())
            }
        };
        check("chip", loc.chip, self.chips)?;
        check("bank", loc.bank, self.banks_per_chip)?;
        check("subarray", loc.subarray, self.subarrays_per_bank)?;
        check("mat", loc.mat, self.mats_per_subarray)?;
        check("row", loc.row, self.mat_rows)?;
        check("col", loc.col, 2 * self.mat_cols)?;
        let bank_linear = (loc.chip * self.banks_per_chip + loc.bank) as u64;
        let rest = (loc.subarray * self.mats_per_subarray + loc.mat) as u64;
        let rest = rest * self.mat_rows as u64 + loc.row as u64;
        let rest = rest * self.total_banks() as u64 + bank_linear;
        Ok(rest * 2 * self.mat_cols as u64 + loc.col as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_capacity_is_16_gib() {
        let geo = MemGeometry::prime_default();
        assert_eq!(geo.capacity_bytes(), 16 * 1024 * 1024 * 1024);
        assert_eq!(geo.total_banks(), 64);
    }

    #[test]
    fn subarray_kinds_partition_the_bank() {
        let geo = MemGeometry::prime_default();
        assert_eq!(geo.subarray_kind(0).unwrap(), SubarrayKind::Mem);
        assert_eq!(geo.subarray_kind(252).unwrap(), SubarrayKind::Mem);
        assert_eq!(geo.subarray_kind(253).unwrap(), SubarrayKind::Buffer);
        assert_eq!(geo.subarray_kind(254).unwrap(), SubarrayKind::FullFunction);
        assert_eq!(geo.subarray_kind(255).unwrap(), SubarrayKind::FullFunction);
        assert!(geo.subarray_kind(256).is_err());
        assert_eq!(geo.ff_subarray_indices(), vec![254, 255]);
        assert_eq!(geo.buffer_subarray_index(), 253);
    }

    #[test]
    fn ff_reservation_is_a_small_fraction() {
        let geo = MemGeometry::prime_default();
        let frac = geo.ff_reserved_bytes() as f64 / geo.capacity_bytes() as f64;
        assert!((frac - 2.0 / 256.0).abs() < 1e-12);
    }

    #[test]
    fn max_synapses_matches_paper_order_of_magnitude() {
        let geo = MemGeometry::prime_default();
        // Paper §IV-B1: ~2.7x10^8 synapses maximum.
        let synapses = geo.max_synapses() as f64;
        assert!((synapses / 2.7e8 - 1.0).abs() < 0.01, "got {synapses}");
    }

    #[test]
    fn decode_encode_round_trip() {
        let geo = MemGeometry::small();
        let capacity_bits = geo.capacity_bytes() * 8;
        // Probe a spread of addresses including both ends.
        for addr in [0, 1, 255, 256, 65_535, capacity_bits / 2, capacity_bits - 1] {
            let loc = geo.decode(addr).unwrap();
            assert_eq!(geo.encode(loc).unwrap(), addr, "round trip failed at {addr}");
        }
        assert!(geo.decode(capacity_bits).is_err());
    }

    #[test]
    fn consecutive_rows_interleave_across_banks() {
        let geo = MemGeometry::prime_default();
        let a = geo.decode(0).unwrap();
        let b = geo.decode(2 * geo.mat_cols as u64).unwrap();
        let linear_a = a.chip * geo.banks_per_chip + a.bank;
        let linear_b = b.chip * geo.banks_per_chip + b.bank;
        assert_eq!(linear_b, linear_a + 1);
    }

    #[test]
    fn encode_validates_coordinates() {
        let geo = MemGeometry::small();
        let bad = Location { chip: 2, bank: 0, subarray: 0, mat: 0, row: 0, col: 0 };
        assert!(matches!(geo.encode(bad), Err(MemError::CoordinateOutOfRange { field: "chip", .. })));
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(SubarrayKind::Mem.name(), "mem");
        assert_eq!(SubarrayKind::FullFunction.name(), "full-function");
        assert_eq!(SubarrayKind::Buffer.name(), "buffer");
    }
}
