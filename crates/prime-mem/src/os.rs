//! Operating-system support for morphable FF subarrays (paper §IV-C).
//!
//! When FF subarrays are configured for NN computation, their address
//! range is reserved and supervised by the OS. At run time, if few
//! crossbars are computing and the page miss rate climbs above a
//! threshold (memory capacity is insufficient), the OS releases reserved
//! FF space back to normal memory; when pressure subsides and NN demand
//! returns, it reclaims it. The OS tracks the page-miss-rate curve
//! (Zhou et al. \[80\]) and works with the MMU to keep the FF mapping
//! information, deciding at crossbar (mat) granularity.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::error::MemError;

/// Sliding-window page-miss-rate tracker.
///
/// # Examples
///
/// ```
/// use prime_mem::PageMissTracker;
///
/// let mut tracker = PageMissTracker::new(4);
/// tracker.record(false);
/// tracker.record(true);
/// assert_eq!(tracker.miss_rate(), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageMissTracker {
    window: usize,
    history: VecDeque<bool>,
    misses_in_window: usize,
}

impl PageMissTracker {
    /// Creates a tracker over the last `window` page accesses.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "tracking window must be non-empty");
        PageMissTracker { window, history: VecDeque::with_capacity(window), misses_in_window: 0 }
    }

    /// Records one page access (`miss = true` for a page miss).
    pub fn record(&mut self, miss: bool) {
        if self.history.len() == self.window
            && self.history.pop_front() == Some(true) {
                self.misses_in_window -= 1;
            }
        self.history.push_back(miss);
        if miss {
            self.misses_in_window += 1;
        }
    }

    /// Miss rate over the current window (0 when no accesses recorded).
    pub fn miss_rate(&self) -> f64 {
        if self.history.is_empty() {
            0.0
        } else {
            self.misses_in_window as f64 / self.history.len() as f64
        }
    }

    /// Number of accesses currently in the window.
    pub fn observed(&self) -> usize {
        self.history.len()
    }
}

/// The OS decision for the FF subarray pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MorphDecision {
    /// Keep the current configuration.
    Stay,
    /// Release reserved FF mats to normal memory (capacity pressure).
    ReleaseToMemory,
    /// Reclaim released mats for NN computation (compute demand).
    ReclaimForCompute,
}

/// Policy combining the page miss rate and FF utilization (paper §IV-C:
/// "based on the combination of the page miss rate and the utilization of
/// the FF subarrays for computation").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MorphPolicy {
    /// Page-miss-rate threshold above which memory is considered
    /// insufficient.
    pub miss_rate_threshold: f64,
    /// FF-utilization threshold below which compute mats are releasable.
    pub low_utilization_threshold: f64,
    /// FF-utilization threshold above which released mats are reclaimed.
    pub high_utilization_threshold: f64,
}

impl MorphPolicy {
    /// A reasonable default: release when miss rate exceeds 5 % while
    /// fewer than 10 % of FF mats compute; reclaim when utilization
    /// pressure exceeds 90 % of the remaining compute pool.
    pub fn prime_default() -> Self {
        MorphPolicy {
            miss_rate_threshold: 0.05,
            low_utilization_threshold: 0.10,
            high_utilization_threshold: 0.90,
        }
    }

    /// Decides the next action from the observed miss rate and the
    /// fraction of FF mats currently used for computation.
    pub fn decide(&self, miss_rate: f64, ff_utilization: f64) -> MorphDecision {
        if miss_rate > self.miss_rate_threshold && ff_utilization < self.low_utilization_threshold
        {
            MorphDecision::ReleaseToMemory
        } else if miss_rate <= self.miss_rate_threshold
            && ff_utilization >= self.high_utilization_threshold
        {
            MorphDecision::ReclaimForCompute
        } else {
            MorphDecision::Stay
        }
    }
}

impl Default for MorphPolicy {
    fn default() -> Self {
        MorphPolicy::prime_default()
    }
}

/// MMU bookkeeping of FF mats: which are reserved for computation and
/// which are released as normal memory. Granularity is one crossbar (mat),
/// per the paper.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FfReservationMap {
    /// `true` = reserved for computation; indexed by flat mat id.
    reserved: Vec<bool>,
    /// `true` = currently executing a mapped NN (cannot be released).
    busy: Vec<bool>,
}

impl FfReservationMap {
    /// Creates a map for `total_mats` FF mats, all released (memory mode).
    pub fn new(total_mats: usize) -> Self {
        FfReservationMap { reserved: vec![false; total_mats], busy: vec![false; total_mats] }
    }

    /// Total FF mats tracked.
    pub fn total(&self) -> usize {
        self.reserved.len()
    }

    /// Number of mats reserved for computation.
    pub fn reserved_count(&self) -> usize {
        self.reserved.iter().filter(|&&r| r).count()
    }

    /// Fraction of mats reserved for computation.
    pub fn utilization(&self) -> f64 {
        if self.reserved.is_empty() {
            0.0
        } else {
            self.reserved_count() as f64 / self.reserved.len() as f64
        }
    }

    /// Reserves `count` released mats for computation; returns their ids.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::ReservationConflict`] if fewer than `count`
    /// mats are released.
    pub fn reserve(&mut self, count: usize) -> Result<Vec<usize>, MemError> {
        let free: Vec<usize> =
            self.reserved.iter().enumerate().filter(|(_, &r)| !r).map(|(i, _)| i).collect();
        if free.len() < count {
            return Err(MemError::ReservationConflict {
                reason: "not enough released FF mats to reserve",
            });
        }
        let chosen: Vec<usize> = free.into_iter().take(count).collect();
        for &i in &chosen {
            self.reserved[i] = true;
        }
        Ok(chosen)
    }

    /// Marks a reserved mat as busy (an NN is mapped and executing on it).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::ReservationConflict`] if the mat is not
    /// reserved.
    pub fn mark_busy(&mut self, mat: usize, busy: bool) -> Result<(), MemError> {
        if mat >= self.reserved.len() || !self.reserved[mat] {
            return Err(MemError::ReservationConflict { reason: "mat is not reserved" });
        }
        self.busy[mat] = busy;
        Ok(())
    }

    /// Releases up to `count` idle reserved mats back to normal memory,
    /// returning the ids actually released (busy mats are skipped — data
    /// must not be lost mid-computation).
    pub fn release_idle(&mut self, count: usize) -> Vec<usize> {
        let mut released = Vec::new();
        for i in 0..self.reserved.len() {
            if released.len() == count {
                break;
            }
            if self.reserved[i] && !self.busy[i] {
                self.reserved[i] = false;
                released.push(i);
            }
        }
        released
    }

    /// Bytes of memory capacity currently released (visible to the OS as
    /// normal memory), given the memory-mode capacity of one mat.
    pub fn released_bytes(&self, mat_bytes: u64) -> u64 {
        (self.total() - self.reserved_count()) as u64 * mat_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_respects_window() {
        let mut t = PageMissTracker::new(3);
        t.record(true);
        t.record(true);
        t.record(true);
        assert_eq!(t.miss_rate(), 1.0);
        t.record(false);
        t.record(false);
        t.record(false);
        assert_eq!(t.miss_rate(), 0.0);
        assert_eq!(t.observed(), 3);
    }

    #[test]
    fn tracker_partial_window() {
        let mut t = PageMissTracker::new(10);
        t.record(true);
        t.record(false);
        assert_eq!(t.miss_rate(), 0.5);
    }

    #[test]
    fn policy_releases_under_pressure_and_idle_ff() {
        let p = MorphPolicy::prime_default();
        assert_eq!(p.decide(0.10, 0.05), MorphDecision::ReleaseToMemory);
        assert_eq!(p.decide(0.10, 0.50), MorphDecision::Stay);
        assert_eq!(p.decide(0.01, 0.95), MorphDecision::ReclaimForCompute);
        assert_eq!(p.decide(0.01, 0.50), MorphDecision::Stay);
    }

    #[test]
    fn reservation_lifecycle() {
        let mut map = FfReservationMap::new(8);
        assert_eq!(map.utilization(), 0.0);
        let got = map.reserve(4).unwrap();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(map.utilization(), 0.5);
        map.mark_busy(0, true).unwrap();
        let released = map.release_idle(4);
        assert_eq!(released, vec![1, 2, 3]); // mat 0 is busy
        assert_eq!(map.reserved_count(), 1);
    }

    #[test]
    fn reserve_fails_when_exhausted() {
        let mut map = FfReservationMap::new(2);
        map.reserve(2).unwrap();
        assert!(map.reserve(1).is_err());
    }

    #[test]
    fn busy_requires_reservation() {
        let mut map = FfReservationMap::new(2);
        assert!(map.mark_busy(0, true).is_err());
        map.reserve(1).unwrap();
        map.mark_busy(0, true).unwrap();
    }

    #[test]
    fn released_bytes_track_free_pool() {
        let mut map = FfReservationMap::new(4);
        assert_eq!(map.released_bytes(1024), 4096);
        map.reserve(1).unwrap();
        assert_eq!(map.released_bytes(1024), 3072);
    }
}
