//! Rank-level model: all banks of the memory behind one shared channel,
//! with FF-computation concurrency accounting (paper §III-B).
//!
//! The Buffer subarrays give PRIME a private path between FF subarrays
//! and their staging data, so while FF subarrays compute, the CPU keeps
//! accessing Mem subarrays through the regular channel. The only
//! interference is on a bank's global data lines when the CPU touches
//! that bank's *Buffer* subarray while it is staging FF data.

use serde::{Deserialize, Serialize};

use crate::bank::Bank;
use crate::error::MemError;
use crate::geometry::{MemGeometry, SubarrayKind};
use crate::timing::MemTiming;

/// Interference statistics for a CPU access stream issued while FF
/// subarrays compute.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct InterferenceStats {
    /// CPU accesses that proceeded in parallel with FF computation.
    pub unobstructed: u64,
    /// CPU accesses that collided with FF<->Buffer staging on the GDL.
    pub stalled: u64,
    /// Total stall time added by collisions, ns.
    pub stall_ns: f64,
}

impl InterferenceStats {
    /// Fraction of accesses that stalled (0 when idle).
    pub fn stall_rate(&self) -> f64 {
        let total = self.unobstructed + self.stalled;
        if total == 0 {
            0.0
        } else {
            self.stalled as f64 / total as f64
        }
    }
}

/// A rank: every bank of the memory behind one shared channel.
///
/// # Examples
///
/// ```
/// use prime_mem::{MemGeometry, MemTiming, Rank};
///
/// let mut rank = Rank::new(MemGeometry::small(), MemTiming::prime_default());
/// let latency = rank.access(0, false)?;
/// assert!(latency > 0.0);
/// # Ok::<(), prime_mem::MemError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rank {
    geometry: MemGeometry,
    timing: MemTiming,
    banks: Vec<Bank>,
    /// Which banks currently have FF subarrays computing (and therefore
    /// Buffer subarrays staging data over the GDL).
    ff_active: Vec<bool>,
    interference: InterferenceStats,
}

impl Rank {
    /// Creates an idle rank.
    pub fn new(geometry: MemGeometry, timing: MemTiming) -> Self {
        let banks =
            (0..geometry.total_banks()).map(|_| Bank::new(geometry, timing)).collect();
        Rank {
            geometry,
            timing,
            banks,
            ff_active: vec![false; geometry.total_banks()],
            interference: InterferenceStats::default(),
        }
    }

    /// The rank's geometry.
    pub fn geometry(&self) -> &MemGeometry {
        &self.geometry
    }

    /// Marks a bank's FF subarrays as computing (Buffer subarray busy).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::CoordinateOutOfRange`] for an invalid bank.
    pub fn set_ff_active(&mut self, bank_linear: usize, active: bool) -> Result<(), MemError> {
        if bank_linear >= self.banks.len() {
            return Err(MemError::CoordinateOutOfRange {
                field: "bank",
                value: bank_linear,
                limit: self.banks.len(),
            });
        }
        self.ff_active[bank_linear] = active;
        Ok(())
    }

    /// Banks currently computing.
    pub fn ff_active_count(&self) -> usize {
        self.ff_active.iter().filter(|&&a| a).count()
    }

    /// Accumulated interference statistics.
    pub fn interference(&self) -> InterferenceStats {
        self.interference
    }

    /// Per-bank access statistics.
    pub fn bank_stats(&self, bank_linear: usize) -> &crate::bank::BankStats {
        self.banks[bank_linear].stats()
    }

    /// Performs one CPU access at byte address `addr`, returning its
    /// latency in ns. Accesses to a computing bank's Buffer subarray
    /// contend with FF staging on the GDL and pay a stall; accesses to
    /// Mem subarrays never do — the paper's CPU/FF parallelism claim.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::AddressOutOfRange`] past installed capacity.
    pub fn access(&mut self, addr: u64, is_write: bool) -> Result<f64, MemError> {
        let loc = self.geometry.decode(addr * 8)?;
        let bank_linear = loc.chip * self.geometry.banks_per_chip + loc.bank;
        let mut latency = self.banks[bank_linear].access(loc, is_write)?;
        let touches_buffer =
            self.geometry.subarray_kind(loc.subarray)? == SubarrayKind::Buffer;
        if self.ff_active[bank_linear] && touches_buffer {
            // The FF side holds the Buffer subarray's port: wait out one
            // staging transfer on the GDL.
            let stall = self.timing.gdl_transfer_ns(u64::from(self.timing.gdl_bits) / 8);
            latency += stall;
            self.interference.stalled += 1;
            self.interference.stall_ns += stall;
        } else {
            self.interference.unobstructed += 1;
        }
        Ok(latency)
    }

    /// Runs a CPU access stream (byte addresses) and returns its total
    /// latency in ns.
    ///
    /// # Errors
    ///
    /// Returns the first address error encountered.
    pub fn run_stream(&mut self, addrs: &[u64], is_write: bool) -> Result<f64, MemError> {
        let mut total = 0.0;
        for &addr in addrs {
            total += self.access(addr, is_write)?;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Location;

    fn rank() -> Rank {
        Rank::new(MemGeometry::small(), MemTiming::prime_default())
    }

    /// Byte address of a location in the small geometry.
    fn addr_of(r: &Rank, loc: Location) -> u64 {
        r.geometry().encode(loc).unwrap() / 8
    }

    #[test]
    fn mem_subarray_access_is_unaffected_by_ff_computation() {
        let mut r = rank();
        let loc = Location { chip: 0, bank: 0, subarray: 0, mat: 0, row: 5, col: 0 };
        let addr = addr_of(&r, loc);
        let quiet = r.access(addr, false).unwrap();
        r.set_ff_active(0, true).unwrap();
        let busy = r.access(addr, false).unwrap();
        assert_eq!(quiet.min(busy), busy.min(quiet));
        assert!(busy <= quiet, "Mem-subarray access must not stall: {busy} vs {quiet}");
        assert_eq!(r.interference().stalled, 0);
    }

    #[test]
    fn buffer_subarray_access_stalls_while_ff_computes() {
        let mut r = rank();
        let buf = r.geometry().buffer_subarray_index();
        let loc = Location { chip: 0, bank: 0, subarray: buf, mat: 0, row: 5, col: 0 };
        let addr = addr_of(&r, loc);
        let quiet = r.access(addr, false).unwrap();
        r.set_ff_active(0, true).unwrap();
        // Same row is now open; without interference this would be a
        // cheaper hit, but the GDL stall dominates.
        let busy = r.access(addr, false).unwrap();
        assert!(busy > 0.0 && r.interference().stalled == 1);
        assert!(r.interference().stall_ns > 0.0);
        let _ = quiet;
    }

    #[test]
    fn other_banks_never_interfere() {
        let mut r = rank();
        r.set_ff_active(0, true).unwrap();
        let buf = r.geometry().buffer_subarray_index();
        // Buffer subarray of a *different* bank: no interference.
        let loc = Location { chip: 0, bank: 1, subarray: buf, mat: 0, row: 0, col: 0 };
        let addr = addr_of(&r, loc);
        r.access(addr, false).unwrap();
        assert_eq!(r.interference().stalled, 0);
    }

    #[test]
    fn stream_aggregates_latency() {
        let mut r = rank();
        let addrs: Vec<u64> = (0..32).map(|i| i * 64).collect();
        let total = r.run_stream(&addrs, false).unwrap();
        assert!(total > 0.0);
        let stats = r.interference();
        assert_eq!(stats.unobstructed + stats.stalled, 32);
    }

    #[test]
    fn ff_activity_bookkeeping() {
        let mut r = rank();
        assert_eq!(r.ff_active_count(), 0);
        r.set_ff_active(1, true).unwrap();
        r.set_ff_active(2, true).unwrap();
        assert_eq!(r.ff_active_count(), 2);
        r.set_ff_active(1, false).unwrap();
        assert_eq!(r.ff_active_count(), 1);
        assert!(r.set_ff_active(99, true).is_err());
    }
}
