//! Property-based tests for the memory-system layer.

use proptest::prelude::*;

use prime_mem::{MemGeometry, MorphPolicy, PageMissTracker};

proptest! {
    /// The address map is bijective: decode then encode returns the
    /// original bit address for any in-range address.
    #[test]
    fn address_map_is_bijective(addr_frac in 0.0f64..1.0) {
        let geo = MemGeometry::small();
        let capacity_bits = geo.capacity_bytes() * 8;
        let addr = ((capacity_bits - 1) as f64 * addr_frac) as u64;
        let loc = geo.decode(addr).unwrap();
        prop_assert_eq!(geo.encode(loc).unwrap(), addr);
    }

    /// Decoded locations always satisfy the geometry's bounds.
    #[test]
    fn decoded_locations_are_in_bounds(addr_frac in 0.0f64..1.0) {
        let geo = MemGeometry::prime_default();
        let capacity_bits = geo.capacity_bytes() * 8;
        let addr = ((capacity_bits - 1) as f64 * addr_frac) as u64;
        let loc = geo.decode(addr).unwrap();
        prop_assert!(loc.chip < geo.chips);
        prop_assert!(loc.bank < geo.banks_per_chip);
        prop_assert!(loc.subarray < geo.subarrays_per_bank);
        prop_assert!(loc.mat < geo.mats_per_subarray);
        prop_assert!(loc.row < geo.mat_rows);
        prop_assert!(loc.col < 2 * geo.mat_cols);
    }

    /// The page-miss tracker's rate always equals the fraction of misses
    /// among the last `window` recorded accesses.
    #[test]
    fn miss_rate_matches_window_contents(
        window in 1usize..32,
        accesses in proptest::collection::vec(any::<bool>(), 0..128),
    ) {
        let mut tracker = PageMissTracker::new(window);
        for &miss in &accesses {
            tracker.record(miss);
        }
        let tail: Vec<bool> =
            accesses.iter().rev().take(window).copied().collect();
        let expected = if tail.is_empty() {
            0.0
        } else {
            tail.iter().filter(|&&m| m).count() as f64 / tail.len() as f64
        };
        prop_assert!((tracker.miss_rate() - expected).abs() < 1e-12);
    }

    /// The morph policy never releases and reclaims for the same inputs,
    /// and extreme inputs always act.
    #[test]
    fn morph_policy_is_consistent(miss in 0.0f64..1.0, util in 0.0f64..1.0) {
        use prime_mem::MorphDecision::*;
        let p = MorphPolicy::prime_default();
        let d = p.decide(miss, util);
        match d {
            ReleaseToMemory => prop_assert!(miss > p.miss_rate_threshold),
            ReclaimForCompute => prop_assert!(util >= p.high_utilization_threshold),
            Stay => {}
        }
    }
}
