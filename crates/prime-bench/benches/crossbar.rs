//! Criterion benches for the ReRAM crossbar substrate: the analog
//! matrix-vector primitive behind every PRIME figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use prime_device::{Crossbar, MlcSpec, NoiseModel, PairedCrossbar, MAT_DIM};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_dot(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossbar_dot");
    let mut rng = SmallRng::seed_from_u64(1);
    for &dim in &[64usize, 128, MAT_DIM] {
        let mut xbar = Crossbar::new(dim, dim, MlcSpec::new(4).unwrap());
        let weights: Vec<u16> = (0..dim * dim).map(|_| rng.gen_range(0..16)).collect();
        xbar.program_matrix(&weights).unwrap();
        let input: Vec<u16> = (0..dim).map(|_| rng.gen_range(0..8)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, _| {
            b.iter(|| xbar.dot(black_box(&input)).unwrap())
        });
    }
    group.finish();
}

fn bench_dot_signed(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(2);
    let mut pair = PairedCrossbar::mat();
    let weights: Vec<i32> = (0..MAT_DIM * MAT_DIM).map(|_| rng.gen_range(-15..=15)).collect();
    pair.program_signed_matrix(&weights).unwrap();
    let input: Vec<u16> = (0..MAT_DIM).map(|_| rng.gen_range(0..8)).collect();
    c.bench_function("paired_dot_signed_256x256", |b| {
        b.iter(|| pair.dot_signed(black_box(&input)).unwrap())
    });
}

fn bench_analog(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(3);
    let mut xbar = Crossbar::mat();
    let weights: Vec<u16> = (0..MAT_DIM * MAT_DIM).map(|_| rng.gen_range(0..16)).collect();
    xbar.program_matrix(&weights).unwrap();
    xbar.apply_program_noise(&NoiseModel::crossbar_default(), &mut rng);
    let input: Vec<u16> = (0..MAT_DIM).map(|_| rng.gen_range(0..8)).collect();
    c.bench_function("crossbar_dot_analog_noisy_256x256", |b| {
        b.iter(|| {
            xbar.dot_analog(black_box(&input), 3, &NoiseModel::ideal(), &mut rng).unwrap()
        })
    });
}

fn bench_programming(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(4);
    let weights: Vec<u16> = (0..MAT_DIM * MAT_DIM).map(|_| rng.gen_range(0..16)).collect();
    c.bench_function("crossbar_program_matrix_256x256", |b| {
        b.iter(|| {
            let mut xbar = Crossbar::mat();
            xbar.program_matrix(black_box(&weights)).unwrap();
            xbar
        })
    });
}

criterion_group!(benches, bench_dot, bench_dot_signed, bench_analog, bench_programming);
criterion_main!(benches);
