//! Criterion benches for software and FF-mat inference: the functional
//! fidelity path behind the Figure 6 accuracy study.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use prime_core::{FfExecutor, PrimeSystem};
use prime_nn::{Activation, DigitGenerator, FullyConnected, Layer, MlBench, Network};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn digit_net(rng: &mut SmallRng) -> Network {
    let mut net = Network::new(vec![
        Layer::Fc(FullyConnected::new(784, 32, Activation::Sigmoid)),
        Layer::Fc(FullyConnected::new(32, 10, Activation::Identity)),
    ])
    .expect("widths match");
    net.init_random(rng);
    net
}

fn bench_software_forward(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(9);
    let net = digit_net(&mut rng);
    let sample = DigitGenerator::default().sample(3, &mut rng);
    c.bench_function("software_forward_784_32_10", |b| {
        b.iter(|| net.forward(black_box(&sample.pixels)).unwrap())
    });
}

fn bench_quantized_forward(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(10);
    let net = digit_net(&mut rng);
    let quantized = net.weight_quantized_clone(3).unwrap();
    let sample = DigitGenerator::default().sample(5, &mut rng);
    c.bench_function("quantized_forward_3bit", |b| {
        b.iter(|| quantized.forward_activation_quantized(black_box(&sample.pixels), 3).unwrap())
    });
}

fn bench_ff_executor(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(11);
    let net = digit_net(&mut rng);
    let sample = DigitGenerator::default().sample(7, &mut rng);
    c.bench_function("ff_executor_run_784_32_10", |b| {
        b.iter(|| {
            let mut exec = FfExecutor::new();
            exec.run(black_box(&net), black_box(&sample.pixels)).unwrap()
        })
    });
}

fn bench_mlp_s_forward(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(12);
    let mut net = MlBench::MlpS.spec().to_network().unwrap();
    net.init_random(&mut rng);
    let input = vec![0.5f32; 784];
    c.bench_function("software_forward_mlp_s", |b| {
        b.iter(|| net.forward(black_box(&input)).unwrap())
    });
}

/// Serial round-robin vs thread-per-bank batched inference through the
/// command-driven engine (`PrimeSystem::infer_batch`), per bank count.
fn bench_batched_bank_parallelism(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(13);
    let mut net = Network::new(vec![
        Layer::Fc(FullyConnected::new(256, 64, Activation::Relu)),
        Layer::Fc(FullyConnected::new(64, 10, Activation::Identity)),
    ])
    .expect("widths match");
    net.init_random(&mut rng);
    let inputs: Vec<Vec<f32>> = (0..8)
        .map(|i| (0..256).map(|j| ((i * 7 + j * 5) % 13) as f32 / 13.0).collect())
        .collect();
    let mut group = c.benchmark_group("batched_inference");
    for &banks in &[1usize, 4] {
        let mut system = PrimeSystem::new(banks, 2, 8, 4096);
        system.deploy(&net, &[0.5; 256]).expect("fits");
        system.set_parallel(false);
        group.bench_with_input(BenchmarkId::new("serial", banks), &inputs, |b, inputs| {
            b.iter(|| system.infer_batch(black_box(inputs)).unwrap())
        });
        system.set_parallel(true);
        group.bench_with_input(BenchmarkId::new("parallel", banks), &inputs, |b, inputs| {
            b.iter(|| system.infer_batch(black_box(inputs)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_software_forward,
    bench_quantized_forward,
    bench_ff_executor,
    bench_mlp_s_forward,
    bench_batched_bank_parallelism
);
criterion_main!(benches);
