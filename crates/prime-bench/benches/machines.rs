//! Criterion benches for the evaluation machine models: one full
//! Figure-8-style comparison per iteration, plus each machine alone.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use prime_nn::MlBench;
use prime_sim::experiments::{fig10, fig8};
use prime_sim::{CpuMachine, Machine, NpuMachine, PrimeMachine, EVAL_BATCH};

fn bench_single_machines(c: &mut Criterion) {
    let spec = MlBench::MlpM.spec();
    let machines: Vec<(&str, Box<dyn Machine>)> = vec![
        ("cpu", Box::new(CpuMachine::new())),
        ("pnpu_co", Box::new(NpuMachine::co_processor())),
        ("pnpu_pim_x64", Box::new(NpuMachine::pim(64))),
        ("prime", Box::new(PrimeMachine::new())),
    ];
    let mut group = c.benchmark_group("machine_run_mlp_m");
    for (name, machine) in &machines {
        group.bench_with_input(BenchmarkId::from_parameter(name), machine, |b, m| {
            b.iter(|| m.run(black_box(&spec), EVAL_BATCH))
        });
    }
    group.finish();
}

fn bench_vgg_on_prime(c: &mut Criterion) {
    let spec = MlBench::VggD.spec();
    let prime = PrimeMachine::new();
    c.bench_function("prime_run_vgg_d", |b| b.iter(|| prime.run(black_box(&spec), EVAL_BATCH)));
}

fn bench_full_figures(c: &mut Criterion) {
    c.bench_function("experiment_fig8_full", |b| b.iter(fig8::run));
    c.bench_function("experiment_fig10_full", |b| b.iter(fig10::run));
}

criterion_group!(benches, bench_single_machines, bench_vgg_on_prime, bench_full_figures);
criterion_main!(benches);
