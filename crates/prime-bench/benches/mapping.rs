//! Criterion benches for the compile-time mapping passes (paper §IV-B).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use prime_compiler::{map_network, CompileOptions, HwTarget};
use prime_nn::MlBench;

fn bench_map_network(c: &mut Criterion) {
    let hw = HwTarget::prime_default();
    let mut group = c.benchmark_group("map_network");
    for bench in MlBench::ALL {
        let spec = bench.spec();
        group.bench_with_input(BenchmarkId::from_parameter(bench.name()), &spec, |b, spec| {
            b.iter(|| map_network(black_box(spec), &hw, CompileOptions::default()).unwrap())
        });
    }
    group.finish();
}

fn bench_map_without_replication(c: &mut Criterion) {
    let hw = HwTarget::prime_default();
    let spec = MlBench::VggD.spec();
    c.bench_function("map_vgg_no_replication", |b| {
        b.iter(|| {
            map_network(
                black_box(&spec),
                &hw,
                CompileOptions { replicate: false, ..CompileOptions::default() },
            )
            .unwrap()
        })
    });
}

criterion_group!(benches, bench_map_network, bench_map_without_replication);
criterion_main!(benches);
