//! Criterion benches for the extension features: noisy analog compute,
//! IR-drop evaluation, SNN timesteps, in-situ updates, and the
//! command-driven runner.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use prime_core::{BankController, CommandRunner, FfMat};
use prime_device::{Crossbar, IrDropModel, MlcSpec, NoiseModel};
use prime_mem::MatFunction;
use prime_nn::{Activation, FullyConnected, Layer, Network, SnnConfig, SpikingNetwork};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_analog_noisy_mat(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(31);
    let weights: Vec<i32> = (0..256 * 64).map(|_| rng.gen_range(-255..=255)).collect();
    let mut mat = FfMat::new();
    mat.set_function(MatFunction::Program);
    mat.program_composed(&weights, 256, 64).unwrap();
    mat.set_function(MatFunction::Compute);
    mat.apply_program_noise(&NoiseModel::crossbar_default(), &mut rng);
    let inputs: Vec<u16> = (0..256).map(|_| rng.gen_range(0..64)).collect();
    c.bench_function("ff_mat_compute_analog_noisy", |b| {
        b.iter(|| mat.compute_analog(black_box(&inputs), &NoiseModel::ideal(), &mut rng).unwrap())
    });
}

fn bench_ir_drop(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(32);
    let mut xbar = Crossbar::new(256, 128, MlcSpec::new(4).unwrap());
    let weights: Vec<u16> = (0..256 * 128).map(|_| rng.gen_range(0..16)).collect();
    xbar.program_matrix(&weights).unwrap();
    let input: Vec<u16> = (0..256).map(|_| rng.gen_range(0..8)).collect();
    let model = IrDropModel::typical();
    c.bench_function("ir_drop_dot_attenuated_256x128", |b| {
        b.iter(|| model.dot_attenuated(black_box(&xbar), black_box(&input)).unwrap())
    });
    c.bench_function("ir_drop_compensate_weights_256x128", |b| {
        b.iter(|| model.compensate_weights(black_box(&xbar)).unwrap())
    });
}

fn bench_snn_inference(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(33);
    let mut ann = Network::new(vec![
        Layer::Fc(FullyConnected::new(196, 32, Activation::Relu)),
        Layer::Fc(FullyConnected::new(32, 10, Activation::Identity)),
    ])
    .unwrap();
    ann.init_random(&mut rng);
    let calib: Vec<Vec<f32>> = (0..4)
        .map(|_| (0..196).map(|_| rng.gen_range(0.0f32..1.0)).collect())
        .collect();
    let snn = SpikingNetwork::from_network(&ann, SnnConfig::fast(), &calib).unwrap();
    let input: Vec<f32> = (0..196).map(|_| rng.gen_range(0.0f32..1.0)).collect();
    c.bench_function("snn_infer_16_steps", |b| b.iter(|| snn.infer(black_box(&input))));
}

fn bench_command_runner(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(34);
    let mut net = Network::new(vec![
        Layer::Fc(FullyConnected::new(64, 32, Activation::Relu)),
        Layer::Fc(FullyConnected::new(32, 10, Activation::Identity)),
    ])
    .unwrap();
    net.init_random(&mut rng);
    let input: Vec<f32> = (0..64).map(|_| rng.gen_range(0.0f32..1.0)).collect();
    let mut controller = BankController::new(2, 8, 4096, 8192);
    let mut runner = CommandRunner::compile(&net, &mut controller, &input).unwrap();
    c.bench_function("command_runner_infer_64_32_10", |b| {
        b.iter(|| runner.infer(&mut controller, black_box(&input)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_analog_noisy_mat,
    bench_ir_drop,
    bench_snn_inference,
    bench_command_runner
);
criterion_main!(benches);
