//! Criterion benches for the precision composing scheme (paper §III-D)
//! and the peripheral circuits around it.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use prime_circuits::{part_sums, ComposingScheme, MaxPoolUnit, ReconfigurableSa};
use prime_core::FfMat;
use prime_mem::MatFunction;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_part_sums(c: &mut Criterion) {
    let scheme = ComposingScheme::prime_default();
    let mut rng = SmallRng::seed_from_u64(5);
    let inputs: Vec<u16> = (0..256).map(|_| rng.gen_range(0..64)).collect();
    let weights: Vec<i32> = (0..256 * 16).map(|_| rng.gen_range(-255..=255)).collect();
    c.bench_function("composing_part_sums_256x16", |b| {
        b.iter(|| part_sums(&scheme, black_box(&inputs), black_box(&weights), 16).unwrap())
    });
}

fn bench_compose(c: &mut Criterion) {
    let scheme = ComposingScheme::prime_default();
    let mut rng = SmallRng::seed_from_u64(6);
    let inputs: Vec<u16> = (0..256).map(|_| rng.gen_range(0..64)).collect();
    let weights: Vec<i32> = (0..256).map(|_| rng.gen_range(-255..=255)).collect();
    let parts = part_sums(&scheme, &inputs, &weights, 1).unwrap()[0];
    c.bench_function("composing_truncate_accumulate", |b| {
        b.iter(|| scheme.compose(black_box(parts)))
    });
}

fn bench_ff_mat_compute(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(7);
    let weights: Vec<i32> = (0..256 * 128).map(|_| rng.gen_range(-255..=255)).collect();
    let mut mat = FfMat::new();
    mat.set_function(MatFunction::Program);
    mat.program_composed(&weights, 256, 128).unwrap();
    mat.set_function(MatFunction::Compute);
    let inputs: Vec<u16> = (0..256).map(|_| rng.gen_range(0..64)).collect();
    c.bench_function("ff_mat_compute_256x128", |b| {
        b.iter(|| mat.compute(black_box(&inputs)).unwrap())
    });
}

fn bench_sa_conversion(c: &mut Criterion) {
    let mut sa = ReconfigurableSa::new(6).unwrap();
    sa.set_precision(6).unwrap();
    c.bench_function("sa_convert", |b| b.iter(|| sa.convert(black_box(0x3FFFFF), 22).unwrap()));
}

fn bench_max_pool(c: &mut Criterion) {
    let unit = MaxPoolUnit::new();
    let mut rng = SmallRng::seed_from_u64(8);
    let values: Vec<i64> = (0..16).map(|_| rng.gen_range(-100..100)).collect();
    c.bench_function("max_pool_16to1", |b| b.iter(|| unit.pool(black_box(&values)).unwrap()));
}

criterion_group!(
    benches,
    bench_part_sums,
    bench_compose,
    bench_ff_mat_compute,
    bench_sa_conversion,
    bench_max_pool
);
criterion_main!(benches);
