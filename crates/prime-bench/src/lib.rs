//! Figure/table regeneration harness for the PRIME evaluation.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation section (see DESIGN.md for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured results); the criterion benches
//! in `benches/` measure the kernels behind them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::path::Path;

/// Writes an experiment's JSON next to the printed table, under
/// `target/experiment-results/`. I/O failures are reported on stderr
/// rather than aborting the harness — the printed table is the primary
/// output and has already been emitted by the time this runs.
pub fn archive_json(name: &str, json: &str) {
    let dir = Path::new("target/experiment-results");
    let path = dir.join(format!("{name}.json"));
    match fs::create_dir_all(dir).and_then(|()| fs::write(&path, json)) {
        Ok(()) => println!("\n[archived {}]", path.display()),
        Err(err) => eprintln!("\n[archive failed for {}: {err}]", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn archive_writes_file() {
        archive_json("selftest", "{}");
        let content =
            std::fs::read_to_string("target/experiment-results/selftest.json").unwrap();
        assert_eq!(content, "{}");
    }
}
