//! Regenerates Figure 10: energy-saving factors normalized to the
//! CPU-only baseline for pNPU-co, pNPU-pim-x64, and PRIME.
//!
//! Paper reference point: PRIME saves ~895x energy vs pNPU-co across the
//! benchmarks. (pNPU-pim-x1 is omitted, as in the paper, because its
//! energy equals pNPU-pim-x64's: same work on the same hardware class.)

use prime_bench::archive_json;
use prime_sim::experiments::fig10;
use prime_sim::report::{format_factor, format_table, to_json};

fn main() {
    let fig = fig10::run();
    let header: Vec<String> = ["benchmark", "pNPU-co", "pNPU-pim-x64", "PRIME"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows: Vec<Vec<String>> = fig
        .rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                format_factor(r.pnpu_co),
                format_factor(r.pnpu_pim_x64),
                format_factor(r.prime),
            ]
        })
        .collect();
    rows.push(vec![
        fig.gmean.benchmark.clone(),
        format_factor(fig.gmean.pnpu_co),
        format_factor(fig.gmean.pnpu_pim_x64),
        format_factor(fig.gmean.prime),
    ]);
    println!("Figure 10: energy saving vs CPU-only (batch of 64 images)\n");
    println!("{}", format_table(&header, &rows));
    println!(
        "PRIME / pNPU-co (gmean): {:.0}x   (paper: ~895x)",
        fig.gmean.prime / fig.gmean.pnpu_co
    );
    archive_json("fig10_energy", &to_json(&fig).expect("serializable result"));
}
