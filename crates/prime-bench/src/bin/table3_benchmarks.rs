//! Prints Table III: the MlBench benchmarks and their topologies, with
//! the derived synapse and operation counts the paper quotes (VGG-D:
//! ~1.4x10^8 synapses, ~1.6x10^10 operations).

use prime_bench::archive_json;
use prime_nn::MlBench;
use prime_sim::report::{format_table, to_json};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    benchmark: String,
    topology: String,
    synapses: u64,
    mac_ops: u64,
}

fn main() {
    let rows: Vec<Row> = MlBench::ALL
        .iter()
        .map(|b| {
            let spec = b.spec();
            Row {
                benchmark: b.name().to_string(),
                topology: b.topology().to_string(),
                synapses: spec.synapses(),
                mac_ops: spec.mac_ops(),
            }
        })
        .collect();
    let header: Vec<String> =
        ["benchmark", "synapses", "MACs/inference", "topology"].iter().map(|s| s.to_string()).collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                r.synapses.to_string(),
                r.mac_ops.to_string(),
                r.topology.clone(),
            ]
        })
        .collect();
    println!("Table III: the MlBench benchmarks and topologies\n");
    println!("{}", format_table(&header, &table));
    archive_json("table3_benchmarks", &to_json(&rows).expect("serializable result"));
}
