//! Ablation of device non-ideality: classification accuracy of the
//! functional FF-mat pipeline as ReRAM programming precision degrades.
//!
//! The paper's precision scheme assumes cells tuned to ~1 % (isolated)
//! to ~3 % (in-crossbar) relative conductance error \[31\]\[65\]; this sweep
//! shows the architecture's accuracy is robust across that regime and
//! collapses only at implausibly sloppy programming. Also prints the
//! endurance analysis: at 10^12 write endurance, reprogramming FF mats
//! even every millisecond outlives the machine.

use prime_bench::archive_json;
use prime_sim::experiments::{endurance, noise};
use prime_sim::report::{format_table, to_json};

fn main() {
    let sigmas = [0.0, 0.01, 0.03, 0.06, 0.12, 0.25];
    let result = noise::run(120, &sigmas).expect("noise sweep");
    println!("Ablation: programming-noise sensitivity (functional FF-mat pipeline)\n");
    let header: Vec<String> =
        ["programming sigma", "accuracy", "vs software"].iter().map(|s| s.to_string()).collect();
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}%", 100.0 * r.program_sigma),
                format!("{:.1}%", 100.0 * r.accuracy),
                format!("{:+.1} pts", 100.0 * (r.accuracy - result.software_accuracy)),
            ]
        })
        .collect();
    println!("{}", format_table(&header, &rows));
    println!("software reference: {:.1}%", 100.0 * result.software_accuracy);
    println!("(paper §III-D: real devices tune to ~1% isolated / ~3% in-crossbar)\n");

    let rates = [1.0 / 3600.0, 1.0 / 60.0, 1.0, 1000.0];
    let lifetime = endurance::run(&rates);
    println!("Endurance: FF-mat lifetime at 10^12 writes (paper §II-A)\n");
    let header: Vec<String> =
        ["reconfigurations", "lifetime"].iter().map(|s| s.to_string()).collect();
    let labels = ["hourly", "per minute", "per second", "1000/second"];
    let rows: Vec<Vec<String>> = lifetime
        .iter()
        .zip(labels)
        .map(|(r, label)| {
            vec![label.to_string(), format!("{:.1e} years", r.lifetime_years)]
        })
        .collect();
    println!("{}", format_table(&header, &rows));
    archive_json("ablation_noise", &to_json(&(result, lifetime)).expect("serializable result"));
}
