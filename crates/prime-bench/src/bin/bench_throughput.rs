//! Throughput of the batched inference engines.
//!
//! Deploys MLP-M-class and CNN-1-class fully-connected workloads across
//! 1, 2, 4, and 8 banks, plus a VGG-D-class deep stack that cannot fit
//! one bank and deploys as an inter-bank pipeline (paper §IV-B), and
//! measures `PrimeSystem::infer_batch` in both execution modes — serial
//! round-robin vs one thread per stage bank (paper §V bank-level
//! parallelism, stage overlap for pipelined plans) — verifying on every
//! configuration that the two engines produce bit-identical outputs.
//! For pipelined rows the per-batch fill/drain overhead is estimated by
//! timing two batch sizes (`overhead = 2*T(B) - T(2B)`, the intercept of
//! the linear batch-time model). Writes `BENCH_throughput.json` (object
//! with `meta` + `rows`) to the working directory (repo root under
//! `cargo run`); `meta.host_cpu_cores` records the parallelism the host
//! actually offers, so ~1x speedups on a 1-core container are
//! self-explaining.
//!
//! A final section drives the paper's CNN-1 (`conv5x5-pool-720-70-10`)
//! through the functional conv/pool datapath of the device runner
//! (DESIGN.md §11) and reports a per-layer wall-clock breakdown plus a
//! per-phase split of the conv layer (stage/gather/evaluate/emit, from
//! `CommandRunner::infer_profiled_into`), so the cost structure of the
//! weight-stationary conv schedule is visible in
//! `BENCH_throughput.json` (`device_runner` key).
//!
//! The serial engine round-robins the same work regardless of how many
//! banks are deployed, so its baseline is measured once per workload
//! (first bank-count row) and reused; later rows still run the serial
//! engine once, untimed, for the output-equality assert.
//!
//! A last section deploys the paper's VGG-D at **full weight scale**
//! (~1.4x10^8 synapses) on a wide-bank device-runner system, under both
//! weight-layout strategies (`MappingStrategy::ReplicateDense` and
//! `::SharedKernel`), asserting the outputs bit-identical and the
//! shared-kernel conv footprint within its acceptance bound; every
//! engine row also reports deploy wall-time and resident bank-state
//! bytes (`deploy_ms` / `bank_state_bytes`).
//!
//! A searched-vs-fixed section (`search` key) runs the cost-model-driven
//! mapping search (`prime_core::search_mapping` under the latency
//! objective, scored by `prime_sim::SimCostModel`) against the fixed
//! replicate-dense default for MLP-M, CNN-1, and the full-size VGG-D,
//! reporting per-workload candidate counts, the chosen candidate, and
//! the searched/fixed steady-state interval ratio — which can never
//! exceed 1.0, since the fixed default is itself a candidate.
//!
//! `--smoke` runs two fast configurations (one flat, one pipelined)
//! plus the device-runner breakdown, a single-strategy VGG-D (full)
//! deploy, and the (analytical, cheap) searched-vs-fixed section, and
//! skips the JSON. With `--baseline <path>` (CI) the device-runner conv
//! row, the VGG-D (full) deploy time, and the search interval ratios
//! are additionally checked against the pinned `BENCH_baseline.json`:
//! the run fails if conv ns/inference, conv share, or VGG deploy
//! wall-time regresses beyond tolerance, or if any searched mapping
//! scores worse than the fixed default it replaced — so a change that
//! silently reverts the weight-stationary schedule, the
//! replicate-by-cloning deploy, or the search's argmin rule fails CI
//! rather than landing as a slow green build.

use std::time::Instant;

use prime_analyze::Target;
use prime_compiler::{map_network, CompileOptions, HwTarget, MappingStrategy, Objective};
use prime_core::{
    search_mapping, BankController, CandidateVerdict, CommandRunner, ConvPhases, InferScratch,
    PrimeSystem,
};
use prime_sim::SimCostModel;
use prime_nn::{
    Activation, Conv2d, FullyConnected, Layer, MlBench, Network, Pool2d, PoolKind,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Run-level metadata.
#[derive(Serialize)]
struct Meta {
    /// `std::thread::available_parallelism` on the measuring host: the
    /// hard ceiling on any serial-vs-parallel speedup below.
    host_cpu_cores: Option<usize>,
    note: String,
}

/// One measured (workload, bank-count) configuration.
#[derive(Serialize)]
struct Row {
    workload: String,
    topology: String,
    banks: usize,
    /// Pipeline stages one deployed copy executes (1 = fits a bank).
    stages: usize,
    batch: usize,
    serial_ns_per_inference: f64,
    parallel_ns_per_inference: f64,
    serial_inferences_per_s: f64,
    parallel_inferences_per_s: f64,
    speedup: f64,
    /// Estimated per-batch pipeline fill/drain overhead in ns (parallel
    /// engine, pipelined rows only).
    fill_drain_ns: Option<f64>,
    /// Deployment wall-time (map + verify + program + calibrate +
    /// replicate), milliseconds.
    deploy_ms: f64,
    /// Crossbar weight state the deployment keeps resident, shared tiles
    /// counted once (bytes).
    bank_state_bytes: usize,
}

/// One layer of the device-runner breakdown.
#[derive(Serialize)]
struct DeviceLayerRow {
    layer: String,
    ns_per_inference: f64,
    /// Fraction of the whole inference this layer accounts for.
    share: f64,
}

/// One conv phase of the device-runner breakdown (stage / gather /
/// evaluate / emit, summed over every conv layer of the inference).
#[derive(Serialize)]
struct ConvPhaseRow {
    phase: String,
    ns_per_inference: f64,
    /// Fraction of the conv phase total this phase accounts for.
    share: f64,
}

/// The CNN-1-class workload measured layer by layer on the functional
/// device runner (command-driven conv/pool/FC datapath, DESIGN.md §11).
#[derive(Serialize)]
struct DeviceRunnerRow {
    workload: String,
    topology: String,
    batch: usize,
    ns_per_inference: f64,
    inferences_per_s: f64,
    /// Median wall-clock of one whole inference across every measured
    /// (rep, input) pair — the in-process reference point for the
    /// serving bencher's p50 (`BENCH_serve.json`): served p50 minus
    /// this is the wire + batching overhead.
    single_request_ns_p50: f64,
    layers: Vec<DeviceLayerRow>,
    /// Per-phase split of the conv layers (weight-stationary schedule:
    /// row staging, window gathering, analog evaluation, emit).
    conv_phases: Vec<ConvPhaseRow>,
}

/// One strategy's measured deployment of the full-size VGG-D.
#[derive(Serialize)]
struct VggStrategyRow {
    strategy: String,
    /// Deployment wall-time (map + verify + program + calibrate),
    /// milliseconds — ~1.4x10^8 synapses quantized and programmed.
    deploy_ms: f64,
    /// Crossbar weight state kept resident, shared tiles counted once.
    bank_state_bytes: usize,
    /// What the same placements would hold if every one owned its bytes.
    dense_state_bytes: usize,
    unique_tiles: usize,
    aliased_placements: usize,
    ns_per_inference: f64,
}

/// The full-size VGG-D (no class-scale stand-in) deployed and executed
/// on the device runner under both weight-layout strategies.
#[derive(Serialize)]
struct VggFullRow {
    workload: String,
    topology: String,
    synapses: u64,
    batch: usize,
    /// Pipeline stages of the deployed plan.
    stages: usize,
    /// Compiler footprint estimate for the conv layers under the
    /// replicated mapping model: shared-kernel cells / replicate-dense
    /// cells. The shared-kernel acceptance bound
    /// ([`VGG_CONV_RATIO_LIMIT`]) is checked against this.
    shared_conv_cell_ratio: f64,
    strategies: Vec<VggStrategyRow>,
}

/// One workload's searched-vs-fixed comparison: the latency-objective
/// mapping search against the fixed replicate-dense default, both
/// scored with the analytical cost model ([`SimCostModel`]) the search
/// itself minimizes. `interval_ratio <= 1.0` is the search's whole
/// point — the argmin can never lose to a candidate it enumerates.
#[derive(Serialize)]
struct SearchRow {
    workload: String,
    objective: String,
    /// Candidates the search enumerated (fixed default first).
    candidates: usize,
    /// Candidates the static verifiers pruned before scoring.
    pruned: usize,
    /// One-line description of the winning candidate.
    chosen: String,
    fixed_image_ns: f64,
    fixed_interval_ns: f64,
    searched_image_ns: f64,
    searched_interval_ns: f64,
    /// Searched over fixed steady-state interval; at or below 1.0 the
    /// search never regresses on the fixed default.
    interval_ratio: f64,
}

/// The searched-vs-fixed gate of the pinned baseline: the smoke run
/// fails if any workload's `interval_ratio` exceeds this. Pinned at 1.0
/// (plus a float-rounding epsilon in the check): a search that loses to
/// its own fixed default is a selection-rule bug, not host noise.
#[derive(Deserialize)]
struct SearchBaseline {
    max_interval_ratio: f64,
}

/// The pinned regression baseline (`BENCH_baseline.json`): the
/// device-runner conv row and the full-size VGG-D deploy the CI smoke
/// run is held to.
#[derive(Deserialize)]
struct Baseline {
    /// Searched-vs-fixed mapping-search gate.
    search: SearchBaseline,
    /// Conv-layer ns/inference of the pinned run; the smoke check fails
    /// past [`BASELINE_NS_TOLERANCE`] times this.
    device_conv_ns_per_inference: f64,
    /// Conv share of whole-inference time in the pinned run; the smoke
    /// check fails past this plus [`BASELINE_SHARE_TOLERANCE`].
    device_conv_share: f64,
    /// Full-size VGG-D deploy wall-time of the pinned run; the smoke
    /// check fails past [`BASELINE_NS_TOLERANCE`] times this, so a
    /// change that silently reverts the replicate-by-cloning deploy (or
    /// shared-tile adoption) fails CI rather than landing as a
    /// minutes-slower green build.
    vgg_full_deploy_ms: f64,
}

/// The shared-kernel conv footprint must stay at or below this fraction
/// of the replicate-dense estimate for the conv-dominated VGG-D stack.
const VGG_CONV_RATIO_LIMIT: f64 = 0.25;

/// Conv ns/inference may drift up to this factor over the pinned
/// baseline before the check fails — wide enough for noisy shared CI
/// hosts, far below the ~7x cost of the pre-weight-stationary schedule.
const BASELINE_NS_TOLERANCE: f64 = 3.0;

/// Conv share of inference time may exceed the pinned baseline by this
/// much before the check fails. Share is host-speed-independent, so the
/// band is tighter than the wall-clock one.
const BASELINE_SHARE_TOLERANCE: f64 = 0.15;

#[derive(Serialize)]
struct Report {
    meta: Meta,
    rows: Vec<Row>,
    device_runner: DeviceRunnerRow,
    vgg_full: VggFullRow,
    /// Searched-vs-fixed mapping comparison for MLP-M, CNN-1, and the
    /// full-size VGG-D under the analytical cost model.
    search: Vec<SearchRow>,
}

/// A fully-connected ReLU workload the command runner can execute
/// (hidden layers ReLU, final layer identity).
fn fc_net(widths: &[usize], seed: u64) -> Network {
    let mut rng = SmallRng::seed_from_u64(seed);
    let layers = widths
        .windows(2)
        .enumerate()
        .map(|(i, w)| {
            let act =
                if i + 2 == widths.len() { Activation::Identity } else { Activation::Relu };
            Layer::Fc(FullyConnected::new(w[0], w[1], act))
        })
        .collect();
    let mut net = Network::new(layers).expect("chained widths match");
    net.init_random(&mut rng);
    net
}

fn pseudo_batch(len: usize, width: usize) -> Vec<Vec<f32>> {
    (0..len)
        .map(|i| (0..width).map(|j| ((i * 7 + j * 5) % 13) as f32 / 13.0).collect())
        .collect()
}

fn time_batch(system: &mut PrimeSystem, inputs: &[Vec<f32>], reps: usize) -> (f64, Vec<Vec<f32>>) {
    // Warm-up grows every scratch buffer to its steady-state size.
    let outputs = system.infer_batch(inputs).expect("deployed");
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let got = system.infer_batch(inputs).expect("deployed");
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(got, outputs, "engine is not deterministic across repetitions");
        best = best.min(elapsed);
    }
    (best, outputs)
}

/// Geometry of each bank: (FF subarrays, mats per subarray).
struct Config<'a> {
    name: &'a str,
    widths: &'a [usize],
    bank_geometry: (usize, usize),
}

/// Measures one (workload, bank-count) row. The serial engine performs
/// the same round-robin work regardless of bank count, so its timing is
/// a per-workload constant: `serial_baseline_s` carries the first row's
/// measurement into later rows, which then run the serial engine once,
/// untimed, purely as the output-equality reference. Returns the row and
/// the serial seconds used (to seed the next row's baseline).
fn measure(
    config: &Config<'_>,
    banks: usize,
    batch: usize,
    reps: usize,
    serial_baseline_s: Option<f64>,
) -> (Row, f64) {
    let Config { name, widths, bank_geometry: (subarrays, mats) } = *config;
    let net = fc_net(widths, 0x5EED);
    let calibration = vec![0.5f32; widths[0]];
    let mut system = PrimeSystem::new(banks, subarrays, mats, 8192);
    system.deploy(&net, &calibration).expect("workload fits the memory");
    let stages = system.deployed_stages().expect("deployed");
    let inputs = pseudo_batch(batch, widths[0]);

    system.set_parallel(false);
    let (serial_s, serial_out) = match serial_baseline_s {
        Some(s) => (s, system.infer_batch(&inputs).expect("deployed")),
        None => time_batch(&mut system, &inputs, reps),
    };
    system.set_parallel(true);
    let (parallel_s, parallel_out) = time_batch(&mut system, &inputs, reps);
    assert_eq!(
        serial_out, parallel_out,
        "{name} on {banks} banks: parallel outputs diverge from serial"
    );
    // Pipelined rows: the intercept of the linear batch-time model
    // T(B) = fill_drain + steady * B, from a second (doubled) batch.
    let fill_drain_ns = (stages > 1).then(|| {
        let doubled = pseudo_batch(2 * batch, widths[0]);
        let (doubled_s, _) = time_batch(&mut system, &doubled, reps);
        ((2.0 * parallel_s - doubled_s) * 1e9).max(0.0)
    });

    let per_inf = |s: f64| s / batch as f64 * 1e9;
    let deploy = system.deploy_stats().expect("deployed");
    let row = Row {
        workload: name.to_string(),
        topology: widths.iter().map(usize::to_string).collect::<Vec<_>>().join("-"),
        banks,
        stages,
        batch,
        serial_ns_per_inference: per_inf(serial_s),
        parallel_ns_per_inference: per_inf(parallel_s),
        serial_inferences_per_s: batch as f64 / serial_s,
        parallel_inferences_per_s: batch as f64 / parallel_s,
        speedup: serial_s / parallel_s,
        fill_drain_ns,
        deploy_ms: deploy.wall_ms,
        bank_state_bytes: deploy.resident_bytes,
    };
    (row, serial_s)
}

/// The paper's CNN-1 (`conv5x5-pool-720-70-10`) with runner-supported
/// activations: conv and hidden FC layers ReLU, final layer identity.
fn cnn1_class_net(seed: u64) -> Network {
    let mut rng = SmallRng::seed_from_u64(seed);
    let layers = vec![
        Layer::Conv(Conv2d::new(1, 5, 5, 28, 28, 0, Activation::Relu)),
        Layer::Pool(Pool2d::new(PoolKind::Max, 5, 24, 24, 2)),
        Layer::Fc(FullyConnected::new(720, 70, Activation::Relu)),
        Layer::Fc(FullyConnected::new(70, 10, Activation::Identity)),
    ];
    let mut net = Network::new(layers).expect("CNN-1 shapes chain");
    net.init_random(&mut rng);
    net
}

/// Times the CNN-1-class conv/pool workload layer by layer on the
/// functional device runner. Per-layer times come from the rep with the
/// lowest whole-inference total (the same best-of-reps policy as
/// `time_batch`), summed over the batch.
fn measure_device_runner(batch: usize, reps: usize) -> DeviceRunnerRow {
    let net = cnn1_class_net(0x5EED);
    let calibration = vec![0.5f32; 28 * 28];
    let mut controller = BankController::new(2, 8, 4096, 8192);
    let runner = CommandRunner::compile(&net, &mut controller, &calibration)
        .expect("CNN-1-class fits one bank");
    let labels = runner.layer_labels();
    let inputs = pseudo_batch(batch, 28 * 28);

    let mut scratch = InferScratch::new();
    let mut out = Vec::new();
    let mut ns = Vec::new();
    let mut phases = ConvPhases::default();
    // Warm-up grows every scratch buffer; the last output doubles as the
    // determinism reference for the measured reps.
    for input in &inputs {
        runner
            .infer_profiled_into(
                &mut controller,
                input,
                &mut scratch,
                &mut out,
                &mut ns,
                &mut phases,
            )
            .expect("compiled plan runs");
    }
    let reference = out.clone();

    let mut best_total = f64::INFINITY;
    let mut best_layers = vec![0.0f64; labels.len()];
    let mut best_phases = ConvPhases::default();
    let mut single_request_ns = Vec::with_capacity(reps * inputs.len());
    for _ in 0..reps {
        let mut layer_sums = vec![0.0f64; labels.len()];
        let mut phase_sums = ConvPhases::default();
        for input in &inputs {
            runner
                .infer_profiled_into(
                    &mut controller,
                    input,
                    &mut scratch,
                    &mut out,
                    &mut ns,
                    &mut phases,
                )
                .expect("compiled plan runs");
            single_request_ns.push(ns.iter().sum::<f64>());
            for (sum, v) in layer_sums.iter_mut().zip(&ns) {
                *sum += v;
            }
            phase_sums.stage_ns += phases.stage_ns;
            phase_sums.gather_ns += phases.gather_ns;
            phase_sums.eval_ns += phases.eval_ns;
            phase_sums.emit_ns += phases.emit_ns;
        }
        assert_eq!(out, reference, "device runner is not deterministic across repetitions");
        let total: f64 = layer_sums.iter().sum();
        if total < best_total {
            best_total = total;
            best_layers = layer_sums;
            best_phases = phase_sums;
        }
    }

    let phase_total = best_phases.total_ns();
    let conv_phases = [
        ("stage", best_phases.stage_ns),
        ("gather", best_phases.gather_ns),
        ("evaluate", best_phases.eval_ns),
        ("emit", best_phases.emit_ns),
    ]
    .into_iter()
    .map(|(phase, sum)| ConvPhaseRow {
        phase: phase.to_string(),
        ns_per_inference: sum / batch as f64,
        share: if phase_total > 0.0 { sum / phase_total } else { 0.0 },
    })
    .collect();

    // Nearest-rank median of every measured single-inference total: the
    // latency a one-request batch sees in process, without wire framing
    // or queueing — the floor the serving bencher's p50 is read against.
    single_request_ns.sort_by(|a, b| a.total_cmp(b));
    let single_request_ns_p50 =
        single_request_ns.get(single_request_ns.len().saturating_sub(1) / 2).copied().unwrap_or(0.0);

    let per_inf = best_total / batch as f64;
    DeviceRunnerRow {
        workload: "CNN-1-class".to_string(),
        topology: "conv5x5-pool-720-70-10".to_string(),
        batch,
        ns_per_inference: per_inf,
        inferences_per_s: 1e9 / per_inf,
        single_request_ns_p50,
        layers: labels
            .into_iter()
            .zip(best_layers)
            .map(|(layer, sum)| DeviceLayerRow {
                layer,
                ns_per_inference: sum / batch as f64,
                share: if best_total > 0.0 { sum / best_total } else { 0.0 },
            })
            .collect(),
        conv_phases,
    }
}

/// Deploys the full-size VGG-D (~1.4x10^8 synapses, paper Table III) on
/// a wide-bank device-runner system and times deployment plus single
/// inferences. `strategies` selects how many weight layouts to measure:
/// the full run deploys under both and asserts the outputs bit-identical
/// (the weight layout must never change the arithmetic); the smoke run
/// deploys shared-kernel only, for the deploy-time regression gate.
///
/// Each FF subarray holds 1600 mats so VGG-D's widest stage (the
/// 25088x4096 FC, 3168 mats) fits one bank; three banks hold the whole
/// 4230-mat plan as an inter-bank pipeline with one copy — the §IV-B
/// large-scale case at the paper's real scale.
fn measure_vgg_full(strategies: &[MappingStrategy]) -> VggFullRow {
    let bench = MlBench::VggD;
    let spec = bench.spec();
    // Conv-footprint estimate from the replicated mapping model (the
    // analytic utilization view, where in-mat replication and memory
    // copies re-place every conv kernel).
    let estimate = map_network(
        &spec,
        &HwTarget::prime_default(),
        CompileOptions { replicate: true, ..CompileOptions::fixed(MappingStrategy::SharedKernel) },
    )
    .expect("VGG-D maps on the paper target");
    let conv = estimate.conv_footprint();
    let ratio = conv.unique_cells as f64 / conv.placed_cells.max(1) as f64;
    assert!(
        ratio <= VGG_CONV_RATIO_LIMIT,
        "shared-kernel conv footprint ratio {ratio:.3} exceeds {VGG_CONV_RATIO_LIMIT}"
    );

    let net = spec.to_runner_network(0x5EED).expect("VGG-D builds at full weight scale");
    let calibration: Vec<f32> =
        (0..net.inputs()).map(|j| ((j * 5) % 13) as f32 / 13.0).collect();
    let input: Vec<f32> = (0..net.inputs()).map(|j| ((j * 7) % 11) as f32 / 11.0).collect();

    let mut rows = Vec::new();
    let mut stages = 0;
    let mut reference: Option<Vec<Vec<f32>>> = None;
    for &strategy in strategies {
        let mut system = PrimeSystem::new(3, 2, 1600, 65536);
        system
            .deploy_with(&net, &calibration, strategy)
            .expect("full-size VGG-D deploys on the device runner");
        stages = system.deployed_stages().expect("deployed");
        let stats = system.deploy_stats().expect("deployed").clone();
        let start = Instant::now();
        let outputs = system.infer_batch(std::slice::from_ref(&input)).expect("runs");
        let inference_s = start.elapsed().as_secs_f64();
        match &reference {
            Some(expected) => assert_eq!(
                expected, &outputs,
                "VGG-D outputs diverged between weight-layout strategies"
            ),
            None => reference = Some(outputs),
        }
        println!(
            "VGG-D (full) [{}]: deploy {:.0} ms, bank state {:.0} MB (dense {:.0} MB), \
             {} tiles ({} aliased placements), inference {:.1} s",
            strategy.name(),
            stats.wall_ms,
            stats.resident_bytes as f64 / (1 << 20) as f64,
            stats.dense_bytes as f64 / (1 << 20) as f64,
            stats.unique_tiles,
            stats.aliased_placements,
            inference_s
        );
        rows.push(VggStrategyRow {
            strategy: strategy.name().to_string(),
            deploy_ms: stats.wall_ms,
            bank_state_bytes: stats.resident_bytes,
            dense_state_bytes: stats.dense_bytes,
            unique_tiles: stats.unique_tiles,
            aliased_placements: stats.aliased_placements,
            ns_per_inference: inference_s * 1e9,
        });
    }
    VggFullRow {
        workload: "VGG-D (full)".to_string(),
        topology: bench.topology().to_string(),
        synapses: spec.synapses(),
        batch: 1,
        stages,
        shared_conv_cell_ratio: ratio,
        strategies: rows,
    }
}

/// Runs the latency-objective mapping search against the fixed
/// replicate-dense default for MLP-M, CNN-1, and the full-size VGG-D,
/// under the same [`SimCostModel`] the serving registry deploys with.
/// The comparison is analytical (no crossbars programmed), so the full
/// ~1.4x10^8-synapse VGG-D costs milliseconds here, and the smoke run
/// can afford the complete section.
fn measure_search() -> Vec<SearchRow> {
    use prime_nn::MlBench;
    let target = Target::prime_default();
    [MlBench::MlpM, MlBench::Cnn1, MlBench::VggD]
        .into_iter()
        .map(|bench| {
            let spec = bench.spec();
            let fixed = search_mapping(
                &spec,
                &target,
                Objective::Fixed(MappingStrategy::ReplicateDense),
                &SimCostModel,
            );
            let searched = search_mapping(&spec, &target, Objective::Latency, &SimCostModel);
            let fixed_cost = fixed
                .chosen()
                .and_then(|c| c.cost)
                .expect("the fixed default maps every paper workload");
            let chosen = searched.chosen().expect("a candidate survives the verifiers");
            let best = chosen.cost.expect("chosen candidates carry a score");
            let pruned = searched
                .candidates
                .iter()
                .filter(|c| matches!(c.verdict, CandidateVerdict::Pruned { .. }))
                .count();
            SearchRow {
                workload: if matches!(bench, MlBench::VggD) {
                    format!("{} (full)", bench.name())
                } else {
                    bench.name().to_string()
                },
                objective: searched.objective.name().to_string(),
                candidates: searched.candidates.len(),
                pruned,
                chosen: chosen.describe(),
                fixed_image_ns: fixed_cost.image_ns,
                fixed_interval_ns: fixed_cost.interval_ns,
                searched_image_ns: best.image_ns,
                searched_interval_ns: best.interval_ns,
                interval_ratio: best.interval_ns / fixed_cost.interval_ns,
            }
        })
        .collect()
}

/// Holds the measured device-runner conv row to the pinned baseline;
/// exits nonzero on regression so the CI smoke step fails.
fn check_baseline(
    device: &DeviceRunnerRow,
    vgg: &VggFullRow,
    search: &[SearchRow],
    path: &str,
) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("baseline {path} unreadable: {e}"));
    let baseline: Baseline = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("baseline {path} does not parse: {e}"));
    let conv = device
        .layers
        .iter()
        .find(|l| l.layer.starts_with("conv"))
        .expect("device-runner breakdown has a conv row");
    let ns_limit = baseline.device_conv_ns_per_inference * BASELINE_NS_TOLERANCE;
    let share_limit = baseline.device_conv_share + BASELINE_SHARE_TOLERANCE;
    let mut failed = false;
    if conv.ns_per_inference > ns_limit {
        eprintln!(
            "BASELINE REGRESSION: conv {:.0} ns/inference exceeds {:.0} \
             ({}x pinned {:.0})",
            conv.ns_per_inference,
            ns_limit,
            BASELINE_NS_TOLERANCE,
            baseline.device_conv_ns_per_inference
        );
        failed = true;
    }
    if conv.share > share_limit {
        eprintln!(
            "BASELINE REGRESSION: conv share {:.3} exceeds {:.3} \
             (pinned {:.3} + {:.2})",
            conv.share, share_limit, baseline.device_conv_share, BASELINE_SHARE_TOLERANCE
        );
        failed = true;
    }
    let vgg_deploy_ms = vgg
        .strategies
        .iter()
        .map(|s| s.deploy_ms)
        .fold(f64::INFINITY, f64::min);
    let vgg_limit = baseline.vgg_full_deploy_ms * BASELINE_NS_TOLERANCE;
    if vgg_deploy_ms > vgg_limit {
        eprintln!(
            "BASELINE REGRESSION: VGG-D (full) deploy {:.0} ms exceeds {:.0} \
             ({}x pinned {:.0})",
            vgg_deploy_ms, vgg_limit, BASELINE_NS_TOLERANCE, baseline.vgg_full_deploy_ms
        );
        failed = true;
    }
    // Searched-vs-fixed: the cost model is deterministic, so the only
    // slack is float rounding — a searched mapping that loses to the
    // fixed default it enumerated is a selection-rule bug.
    let ratio_limit = baseline.search.max_interval_ratio * (1.0 + 1e-9);
    for row in search {
        if row.interval_ratio > ratio_limit {
            eprintln!(
                "BASELINE REGRESSION: {} searched/fixed interval ratio {:.6} exceeds \
                 pinned {:.3} — the mapping search regressed on its fixed default",
                row.workload, row.interval_ratio, baseline.search.max_interval_ratio
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "baseline check: conv {:.0} ns/inference (limit {:.0}), share {:.3} \
         (limit {:.3}), VGG-D (full) deploy {:.0} ms (limit {:.0}), search \
         interval ratios within {:.3} — ok",
        conv.ns_per_inference,
        ns_limit,
        conv.share,
        share_limit,
        vgg_deploy_ms,
        vgg_limit,
        baseline.search.max_interval_ratio
    );
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let baseline_path = argv
        .iter()
        .position(|a| a == "--baseline")
        .map(|i| argv.get(i + 1).expect("--baseline takes a path").clone());
    // MLP-M-class: the paper's 784-1000-500-250-10 MLP-M as a pure
    // ReLU/identity FC stack. CNN-1-class: CNN-1's fully-connected
    // classifier head (720-70-10). VGG-D-class: a deep FC stack whose 23
    // compiler mats overflow an 8-mat bank, so it deploys as a 4-stage
    // inter-bank pipeline — the paper's §IV-B large-scale case.
    let flat_geometry = (2, 32);
    let deep_widths: &[usize] = &[192, 384, 384, 384, 256, 128, 64, 10];
    let smoke_deep_widths: &[usize] = &[48, 100, 90, 80, 70, 60, 50, 40, 6];
    let configs: Vec<(Config<'_>, Vec<usize>)> = if smoke {
        vec![
            (
                Config {
                    name: "CNN-1-class",
                    widths: &[720, 70, 10],
                    bank_geometry: flat_geometry,
                },
                vec![2],
            ),
            (
                Config {
                    name: "VGG-D-class",
                    widths: smoke_deep_widths,
                    bank_geometry: (1, 2),
                },
                vec![4],
            ),
        ]
    } else {
        vec![
            (
                Config {
                    name: "MLP-M-class",
                    widths: &[784, 1000, 500, 250, 10],
                    bank_geometry: flat_geometry,
                },
                vec![1, 2, 4, 8],
            ),
            (
                Config {
                    name: "CNN-1-class",
                    widths: &[720, 70, 10],
                    bank_geometry: flat_geometry,
                },
                vec![1, 2, 4, 8],
            ),
            // 8-mat banks; one copy spans 4 banks, so 4 banks = one
            // pipelined copy and 8 banks = two.
            (
                Config {
                    name: "VGG-D-class",
                    widths: deep_widths,
                    bank_geometry: (1, 8),
                },
                vec![4, 8],
            ),
        ]
    };
    let (batch_per_bank, reps) = if smoke { (2, 1) } else { (6, 3) };

    let mut rows = Vec::new();
    println!(
        "{:<12} {:>5} {:>6} {:>6} {:>14} {:>14} {:>8}",
        "workload", "banks", "stages", "batch", "serial ns/inf", "parallel ns/inf", "speedup"
    );
    for (config, bank_counts) in &configs {
        // One fixed batch size per workload (divisible by every bank
        // count) so ns/inference is comparable across rows.
        let batch = batch_per_bank * bank_counts.last().copied().unwrap_or(1);
        // Serial baseline: timed on the first row, reused afterwards.
        let mut serial_s: Option<f64> = None;
        for &banks in bank_counts {
            let (row, serial_used) = measure(config, banks, batch, reps, serial_s);
            serial_s = Some(serial_used);
            println!(
                "{:<12} {:>5} {:>6} {:>6} {:>14.0} {:>14.0} {:>7.2}x",
                row.workload,
                row.banks,
                row.stages,
                row.batch,
                row.serial_ns_per_inference,
                row.parallel_ns_per_inference,
                row.speedup
            );
            rows.push(row);
        }
    }

    // Per-layer breakdown of the real conv/pool CNN-1 on the device
    // runner (the engine rows above use its FC classifier head only).
    let device_runner = measure_device_runner(batch_per_bank, if smoke { 1 } else { reps });
    println!(
        "\n{} on the device runner ({}), batch {}:",
        device_runner.workload, device_runner.topology, device_runner.batch
    );
    println!("{:<28} {:>14} {:>7}", "layer", "ns/inf", "share");
    for layer in &device_runner.layers {
        println!(
            "{:<28} {:>14.0} {:>6.1}%",
            layer.layer,
            layer.ns_per_inference,
            layer.share * 100.0
        );
    }
    println!("{:<28} {:>14.0} {:>6.1}%", "total", device_runner.ns_per_inference, 100.0);
    println!(
        "single-request p50 (in-process reference for the serving bencher): {:.0} ns",
        device_runner.single_request_ns_p50
    );
    println!("\nconv phase breakdown (weight-stationary schedule):");
    println!("{:<28} {:>14} {:>7}", "phase", "ns/inf", "share");
    for phase in &device_runner.conv_phases {
        println!(
            "{:<28} {:>14.0} {:>6.1}%",
            phase.phase,
            phase.ns_per_inference,
            phase.share * 100.0
        );
    }

    // The paper's VGG-D at full weight scale on the device runner. The
    // full run measures both weight-layout strategies and asserts their
    // outputs bit-identical; the smoke run deploys once (shared-kernel),
    // enough for the deploy-time regression gate.
    let vgg_strategies: &[MappingStrategy] = if smoke {
        &[MappingStrategy::SharedKernel]
    } else {
        &[MappingStrategy::ReplicateDense, MappingStrategy::SharedKernel]
    };
    println!("\nVGG-D (full) on the device runner:");
    let vgg_full = measure_vgg_full(vgg_strategies);

    // Searched-vs-fixed mapping comparison (analytical, so cheap enough
    // to run in full even under --smoke).
    let search = measure_search();
    println!("\nmapping search vs fixed default (latency objective, analytical model):");
    println!(
        "{:<14} {:>10} {:>7} {:>16} {:>16} {:>8}",
        "workload", "candidates", "pruned", "fixed ns/img", "searched ns/img", "ratio"
    );
    for row in &search {
        println!(
            "{:<14} {:>10} {:>7} {:>16.0} {:>16.0} {:>8.3}",
            row.workload,
            row.candidates,
            row.pruned,
            row.fixed_interval_ns,
            row.searched_interval_ns,
            row.interval_ratio
        );
        println!("  chosen: {}", row.chosen);
    }

    if let Some(path) = &baseline_path {
        check_baseline(&device_runner, &vgg_full, &search, path);
    }
    if smoke {
        println!("\nsmoke mode: skipping BENCH_throughput.json");
        return;
    }
    let report = Report {
        meta: Meta {
            host_cpu_cores: std::thread::available_parallelism().ok().map(|n| n.get()),
            note: "serial-vs-parallel speedup is bounded by host_cpu_cores; on a 1-core \
                   host the engines are expected to tie"
                .to_string(),
        },
        rows,
        device_runner,
        vgg_full,
        search,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_throughput.json", &json).expect("write BENCH_throughput.json");
    println!("\n[wrote BENCH_throughput.json]");
}
