//! Throughput of the bank-parallel batched inference engine.
//!
//! Deploys MLP-M-class and CNN-1-class fully-connected workloads across
//! 1, 2, 4, and 8 banks and measures `PrimeSystem::infer_batch` in both
//! execution modes — serial round-robin vs one thread per bank (paper §V
//! bank-level parallelism) — verifying on every configuration that the
//! two engines produce bit-identical outputs. Writes
//! `BENCH_throughput.json` to the working directory (repo root under
//! `cargo run`).
//!
//! `--smoke` runs a single fast configuration and skips the JSON (CI
//! does-it-run check: it fails on panic, not on regression).

use std::time::Instant;

use prime_core::PrimeSystem;
use prime_nn::{Activation, FullyConnected, Layer, Network};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;

/// One measured (workload, bank-count) configuration.
#[derive(Serialize)]
struct Row {
    workload: String,
    topology: String,
    banks: usize,
    batch: usize,
    serial_ns_per_inference: f64,
    parallel_ns_per_inference: f64,
    serial_inferences_per_s: f64,
    parallel_inferences_per_s: f64,
    speedup: f64,
}

/// A fully-connected ReLU workload the command runner can execute
/// (hidden layers ReLU, final layer identity).
fn fc_net(widths: &[usize], seed: u64) -> Network {
    let mut rng = SmallRng::seed_from_u64(seed);
    let layers = widths
        .windows(2)
        .enumerate()
        .map(|(i, w)| {
            let act =
                if i + 2 == widths.len() { Activation::Identity } else { Activation::Relu };
            Layer::Fc(FullyConnected::new(w[0], w[1], act))
        })
        .collect();
    let mut net = Network::new(layers).expect("chained widths match");
    net.init_random(&mut rng);
    net
}

fn pseudo_batch(len: usize, width: usize) -> Vec<Vec<f32>> {
    (0..len)
        .map(|i| (0..width).map(|j| ((i * 7 + j * 5) % 13) as f32 / 13.0).collect())
        .collect()
}

fn time_batch(system: &mut PrimeSystem, inputs: &[Vec<f32>], reps: usize) -> (f64, Vec<Vec<f32>>) {
    // Warm-up grows every scratch buffer to its steady-state size.
    let outputs = system.infer_batch(inputs).expect("deployed");
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let got = system.infer_batch(inputs).expect("deployed");
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(got, outputs, "engine is not deterministic across repetitions");
        best = best.min(elapsed);
    }
    (best, outputs)
}

fn measure(name: &str, widths: &[usize], banks: usize, batch: usize, reps: usize) -> Row {
    let net = fc_net(widths, 0x5EED);
    let calibration = vec![0.5f32; widths[0]];
    let mut system = PrimeSystem::new(banks, 2, 32, 4096);
    system.deploy(&net, &calibration).expect("workload fits the bank");
    let inputs = pseudo_batch(batch, widths[0]);

    system.set_parallel(false);
    let (serial_s, serial_out) = time_batch(&mut system, &inputs, reps);
    system.set_parallel(true);
    let (parallel_s, parallel_out) = time_batch(&mut system, &inputs, reps);
    assert_eq!(
        serial_out, parallel_out,
        "{name} on {banks} banks: parallel outputs diverge from serial"
    );

    let per_inf = |s: f64| s / batch as f64 * 1e9;
    Row {
        workload: name.to_string(),
        topology: widths.iter().map(usize::to_string).collect::<Vec<_>>().join("-"),
        banks,
        batch,
        serial_ns_per_inference: per_inf(serial_s),
        parallel_ns_per_inference: per_inf(parallel_s),
        serial_inferences_per_s: batch as f64 / serial_s,
        parallel_inferences_per_s: batch as f64 / parallel_s,
        speedup: serial_s / parallel_s,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // MLP-M-class: the paper's 784-1000-500-250-10 MLP-M as a pure
    // ReLU/identity FC stack. CNN-1-class: CNN-1's fully-connected
    // classifier head (720-70-10).
    let workloads: &[(&str, &[usize])] = if smoke {
        &[("CNN-1-class", &[720, 70, 10])]
    } else {
        &[("MLP-M-class", &[784, 1000, 500, 250, 10]), ("CNN-1-class", &[720, 70, 10])]
    };
    let bank_counts: &[usize] = if smoke { &[2] } else { &[1, 2, 4, 8] };
    let (batch_per_bank, reps) = if smoke { (2, 1) } else { (6, 3) };

    let mut rows = Vec::new();
    println!(
        "{:<12} {:>5} {:>6} {:>14} {:>14} {:>8}",
        "workload", "banks", "batch", "serial ns/inf", "parallel ns/inf", "speedup"
    );
    // One fixed batch size per run (divisible by every bank count) so
    // ns/inference is comparable across rows.
    let batch = batch_per_bank * bank_counts.last().copied().unwrap_or(1);
    for (name, widths) in workloads {
        for &banks in bank_counts {
            let row = measure(name, widths, banks, batch, reps);
            println!(
                "{:<12} {:>5} {:>6} {:>14.0} {:>14.0} {:>7.2}x",
                row.workload,
                row.banks,
                row.batch,
                row.serial_ns_per_inference,
                row.parallel_ns_per_inference,
                row.speedup
            );
            rows.push(row);
        }
    }

    if smoke {
        println!("\nsmoke mode: skipping BENCH_throughput.json");
        return;
    }
    let json = serde_json::to_string_pretty(&rows).expect("rows serialize");
    std::fs::write("BENCH_throughput.json", &json).expect("write BENCH_throughput.json");
    println!("\n[wrote BENCH_throughput.json]");
}
