//! Ablation of the compile-time mapping optimizations (paper §IV-B):
//! the replication optimization's latency/utilization contribution, and
//! bank-level parallelism scaling from 1 to 64 banks.

use prime_bench::archive_json;
use prime_nn::MlBench;
use prime_sim::experiments::{ablation, lrn_fallback};
use prime_sim::report::{format_table, to_json};

fn main() {
    let replication = ablation::replication();
    println!("Ablation: the §IV-B1 replication optimization (batch of 64)\n");
    let header: Vec<String> =
        ["benchmark", "latency w/ repl (us)", "latency w/o repl (us)", "speedup", "util w/", "util w/o"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    let rows: Vec<Vec<String>> = replication
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                format!("{:.2}", r.with_replication_ns / 1000.0),
                format!("{:.2}", r.without_replication_ns / 1000.0),
                format!("{:.2}x", r.replication_speedup()),
                format!("{:.1}%", 100.0 * r.utilization_with),
                format!("{:.1}%", 100.0 * r.utilization_without),
            ]
        })
        .collect();
    println!("{}", format_table(&header, &rows));

    println!("Ablation: bank-level parallelism scaling (MLP-M and CNN-1)\n");
    let header: Vec<String> =
        ["banks", "MLP-M latency (us)", "MLP-M speedup", "CNN-1 latency (us)", "CNN-1 speedup"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    let mlp = ablation::bank_scaling(MlBench::MlpM);
    let cnn = ablation::bank_scaling(MlBench::Cnn1);
    let rows: Vec<Vec<String>> = mlp
        .iter()
        .zip(&cnn)
        .map(|(m, c)| {
            vec![
                m.banks.to_string(),
                format!("{:.2}", m.latency_ns / 1000.0),
                format!("{:.1}x", m.speedup_vs_one_bank),
                format!("{:.2}", c.latency_ns / 1000.0),
                format!("{:.1}x", c.speedup_vs_one_bank),
            ]
        })
        .collect();
    println!("{}", format_table(&header, &rows));

    let lrn = lrn_fallback::run();
    println!("CPU fallback cost (paper §III-E: LRN layers run on the CPU):");
    println!(
        "  CNN-1 {:.2} us -> CNN-1+LRN {:.2} us: {:.1}x slowdown from one fallback layer\n",
        lrn.cnn1_ns / 1000.0,
        lrn.cnn1_lrn_ns / 1000.0,
        lrn.penalty()
    );
    archive_json(
        "ablation_mapping",
        &to_json(&(replication, mlp, cnn, lrn)).expect("serializable result"),
    );
}
