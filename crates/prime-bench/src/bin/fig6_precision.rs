//! Regenerates Figure 6: classification accuracy versus dynamic
//! fixed-point input precision (x-axis, 1-8 bits) with one curve per
//! weight precision (1-8 bits), against the floating-point reference.
//!
//! Paper reference point: 3-bit inputs with 3-bit weights are adequate
//! for 99 % classification accuracy (negligible loss vs floating point).
//! The paper uses LeNet-5 on MNIST; this reproduction trains a digit
//! classifier on the synthetic MNIST substitute (DESIGN.md §4).

use prime_bench::archive_json;
use prime_sim::experiments::fig6;
use prime_sim::report::{format_table, to_json};

fn main() {
    let result = fig6::run(fig6::Config::full()).expect("precision sweep");
    let max_bits = result.config.max_bits;
    let mut header = vec!["weights \\ inputs".to_string()];
    header.extend((1..=max_bits).map(|b| format!("{b}-bit")));
    let rows: Vec<Vec<String>> = (1..=max_bits)
        .map(|w| {
            let mut row = vec![format!("{w}-bit")];
            row.extend((1..=max_bits).map(|i| format!("{:.1}%", 100.0 * result.at(i, w))));
            row
        })
        .collect();
    println!("Figure 6: accuracy vs input/weight precision (synthetic MNIST substitute)\n");
    println!("{}", format_table(&header, &rows));
    println!("floating point reference: {:.1}%", 100.0 * result.float_accuracy);
    println!(
        "3-bit/3-bit accuracy:     {:.1}%  ({:.1}% of float; paper: ~99% at 3/3 bits)",
        100.0 * result.at(3, 3),
        100.0 * result.at(3, 3) / result.float_accuracy
    );
    archive_json("fig6_precision", &to_json(&result).expect("serializable result"));
}
