//! Regenerates Figure 9: execution-time breakdown (computation+buffer vs
//! memory) normalized to pNPU-co, comparing pNPU-co, pNPU-pim with one
//! NPU, and PRIME without bank-level parallelism — the paper's
//! configuration for this breakdown.
//!
//! Paper reference points: pNPU-pim removes most of the memory-access
//! time; PRIME reduces visible memory time to zero (hidden behind the
//! Buffer subarrays).

use prime_bench::archive_json;
use prime_sim::experiments::fig9;
use prime_sim::report::{format_table, to_json};

fn main() {
    let fig = fig9::run();
    let header: Vec<String> = ["benchmark", "machine", "compute+buffer", "memory", "total"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let rows: Vec<Vec<String>> = fig
        .bars
        .iter()
        .map(|b| {
            vec![
                b.benchmark.clone(),
                b.machine.clone(),
                format!("{:.4}", b.compute),
                format!("{:.4}", b.memory),
                format!("{:.4}", b.compute + b.memory),
            ]
        })
        .collect();
    println!("Figure 9: execution-time breakdown normalized to pNPU-co\n");
    println!("{}", format_table(&header, &rows));
    println!("Note: PRIME rows report zero memory time — input staging overlaps with");
    println!("computation via the Buffer subarrays (paper: \"PRIME further reduces it to zero\").");
    archive_json("fig9_time_breakdown", &to_json(&fig).expect("serializable result"));
}
