//! Regenerates Figure 8: performance speedups normalized to the CPU-only
//! baseline, per MlBench benchmark plus the geometric mean.
//!
//! Paper reference points: pNPU-pim-x1 averages ~9.1x over pNPU-co;
//! PRIME improves on pNPU-co by ~2360x and on pNPU-pim-x64 by ~4.1x
//! across the benchmarks; VGG-D shows PRIME's smallest speedup.

use prime_bench::archive_json;
use prime_sim::experiments::fig8;
use prime_sim::report::{format_factor, format_table, to_json};

fn main() {
    let fig = fig8::run();
    let header: Vec<String> = ["benchmark", "pNPU-co", "pNPU-pim-x1", "pNPU-pim-x64", "PRIME"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows: Vec<Vec<String>> = fig
        .rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                format_factor(r.pnpu_co),
                format_factor(r.pnpu_pim_x1),
                format_factor(r.pnpu_pim_x64),
                format_factor(r.prime),
            ]
        })
        .collect();
    rows.push(vec![
        fig.gmean.benchmark.clone(),
        format_factor(fig.gmean.pnpu_co),
        format_factor(fig.gmean.pnpu_pim_x1),
        format_factor(fig.gmean.pnpu_pim_x64),
        format_factor(fig.gmean.prime),
    ]);
    println!("Figure 8: speedup vs CPU-only (batch of 64 images)\n");
    println!("{}", format_table(&header, &rows));
    println!(
        "PRIME / pNPU-co (gmean):      {:.0}x   (paper: ~2360x)",
        fig.gmean.prime / fig.gmean.pnpu_co
    );
    println!(
        "pNPU-pim-x1 / pNPU-co (gmean): {:.1}x   (paper: ~9.1x)",
        fig.gmean.pnpu_pim_x1 / fig.gmean.pnpu_co
    );
    println!(
        "PRIME / pNPU-pim-x64 (gmean):  {:.1}x   (paper: ~4.1x)",
        fig.gmean.prime / fig.gmean.pnpu_pim_x64
    );
    archive_json("fig8_speedup", &to_json(&fig).expect("serializable result"));
}
