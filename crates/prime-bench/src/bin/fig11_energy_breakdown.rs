//! Regenerates Figure 11: energy breakdown (computation / buffer /
//! memory) normalized to pNPU-co for pNPU-co, pNPU-pim-x64, and PRIME.
//!
//! Paper reference points: pNPU-pim-x64 matches pNPU-co's computation and
//! buffer energy but saves ~93.9 % of the memory energy; PRIME reduces
//! all three components; CNNs spend relatively more in buffers and less
//! in memory than MLPs.

use prime_bench::archive_json;
use prime_sim::experiments::fig11;
use prime_sim::report::{format_table, to_json};

fn main() {
    let fig = fig11::run();
    let header: Vec<String> = ["benchmark", "machine", "compute", "buffer", "memory", "total"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let rows: Vec<Vec<String>> = fig
        .bars
        .iter()
        .map(|b| {
            vec![
                b.benchmark.clone(),
                b.machine.clone(),
                format!("{:.4}", b.compute),
                format!("{:.4}", b.buffer),
                format!("{:.4}", b.memory),
                format!("{:.4}", b.compute + b.buffer + b.memory),
            ]
        })
        .collect();
    println!("Figure 11: energy breakdown normalized to pNPU-co\n");
    println!("{}", format_table(&header, &rows));
    // Aggregate pim memory saving, the paper's 93.9 % figure.
    let mut co_mem = 0.0;
    let mut pim_mem = 0.0;
    for b in &fig.bars {
        if b.machine == "pNPU-co" {
            co_mem += b.memory;
        } else if b.machine == "pNPU-pim-x64" {
            pim_mem += b.memory;
        }
    }
    println!(
        "pNPU-pim-x64 memory-energy saving vs pNPU-co: {:.1}%  (paper: ~93.9%)",
        100.0 * (1.0 - pim_mem / co_mem)
    );
    archive_json("fig11_energy_breakdown", &to_json(&fig).expect("serializable result"));
}
