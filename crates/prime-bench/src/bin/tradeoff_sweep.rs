//! Design-space sweeps: the §V-D FF-subarray-count tradeoff (peak GOPS
//! vs area overhead) and PRIME throughput vs batch size (the bank-level
//! parallelism knee at 64 images).

use prime_bench::archive_json;
use prime_nn::MlBench;
use prime_sim::experiments::{batch_sweep, ff_tradeoff};
use prime_sim::report::{format_table, to_json};

fn main() {
    let tradeoff = ff_tradeoff::run(8);
    println!("FF-subarray count tradeoff (paper §V-D: GOPS vs area)\n");
    let header: Vec<String> =
        ["FF subarrays/bank", "peak TOPS", "area overhead"].iter().map(|s| s.to_string()).collect();
    let rows: Vec<Vec<String>> = tradeoff
        .iter()
        .map(|r| {
            vec![
                r.ff_subarrays.to_string(),
                format!("{:.1}", r.peak_gops / 1000.0),
                format!("{:.2}%", 100.0 * r.area_overhead),
            ]
        })
        .collect();
    println!("{}", format_table(&header, &rows));
    println!("(the paper picks 2 FF subarrays per bank: 5.76% overhead)\n");

    let batches = [1u32, 4, 16, 64, 128, 256];
    println!("PRIME throughput vs batch size (bank-level parallelism knee)\n");
    let header: Vec<String> = ["batch", "MLP-M images/ms", "CNN-1 images/ms"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mlp = batch_sweep::run(MlBench::MlpM, &batches);
    let cnn = batch_sweep::run(MlBench::Cnn1, &batches);
    let rows: Vec<Vec<String>> = mlp
        .iter()
        .zip(&cnn)
        .map(|(m, c)| {
            vec![
                m.batch.to_string(),
                format!("{:.0}", m.images_per_ms),
                format!("{:.0}", c.images_per_ms),
            ]
        })
        .collect();
    println!("{}", format_table(&header, &rows));
    println!("(throughput saturates once every bank processes one image)");
    archive_json("tradeoff_sweep", &to_json(&(tradeoff, mlp, cnn)).expect("serializable result"));
}
