//! Prints Tables IV and V: the CPU/memory configuration and the pNPU
//! comparative configuration, plus Table I's controller command set —
//! the static configuration the simulator runs with.

use prime_mem::{BufAddr, Command, FfAddr, InputSource, MatAddr, MatFunction, MemAddr, MemGeometry, MemTiming};
use prime_sim::{CpuParams, MemPathParams, NpuParams, PrimeParams};

fn main() {
    let cpu = CpuParams::table_iv();
    let geo = MemGeometry::prime_default();
    let timing = MemTiming::prime_default();
    println!("Table IV: configurations of CPU and memory");
    println!("  processor:      {} cores, {} GHz, out-of-order", cpu.cores, cpu.ghz);
    println!("  L2 cache:       {} MB", cpu.llc_bytes / (1024 * 1024));
    println!(
        "  main memory:    {} GB ReRAM, {} chips/rank, {} banks/chip",
        geo.capacity_bytes() >> 30,
        geo.chips,
        geo.banks_per_chip
    );
    println!(
        "  timing:         tRCD-tCL-tRP-tWR = {}-{}-{}-{} ns, {} MHz IO bus",
        timing.t_rcd_ns, timing.t_cl_ns, timing.t_rp_ns, timing.t_wr_ns, timing.bus_mhz
    );

    let npu = NpuParams::table_v();
    println!("\nTable V: comparative NPU configuration (pNPU-co / pNPU-pim)");
    println!("  datapath:       16x16 multipliers ({} MACs), 256-1 adder tree", npu.macs);
    println!(
        "  buffers:        {} KB in/out, {} KB weights",
        npu.io_buffer_bytes / 1024,
        npu.weight_buffer_bytes / 1024
    );
    println!("  pNPU-pim:       same NPU 3D-stacked per bank (x1 and x64 evaluated)");

    let mem = MemPathParams::prime_default();
    println!("\nMemory paths");
    println!("  external bus:   {:.3} GB/s, {} pJ/B", mem.external_gbps, mem.external_pj_per_byte);
    println!("  internal (3D):  {:.0} GB/s, {} pJ/B", mem.internal_gbps, mem.internal_pj_per_byte);

    let prime = PrimeParams::prime_default();
    println!("\nPRIME FF-subarray parameters");
    println!(
        "  mat evaluate:   {} ns + SA {} ns/bit ({} SAs/mat, {}-bit outputs)",
        prime.mat_evaluate_ns, prime.sa_per_bit_ns, prime.sas_per_mat, prime.output_bits
    );
    println!("  banks:          {} (bank-level parallelism)", prime.banks);

    println!("\nTable I: PRIME controller commands (one example each)");
    let mat = MatAddr { subarray: 0, mat: 0 };
    let examples = [
        Command::SetFunction { mat, function: MatFunction::Compute },
        Command::BypassSigmoid { mat, bypass: true },
        Command::BypassSa { mat, bypass: false },
        Command::SetInputSource { mat, source: InputSource::Buffer },
        Command::Fetch { from: MemAddr(0x1000), to: BufAddr(0), bytes: 256 },
        Command::Commit { from: BufAddr(0), to: MemAddr(0x1000), bytes: 256 },
        Command::Load { from: BufAddr(0), to: FfAddr { mat, offset: 0 }, bytes: 256 },
        Command::Store { from: FfAddr { mat, offset: 0 }, to: BufAddr(0x100), bytes: 64 },
    ];
    for cmd in examples {
        let family = if cmd.is_datapath_configure() { "configure" } else { "data-flow" };
        println!("  [{family}] {cmd}");
    }
}
