//! Regenerates Figure 12: PRIME's area overhead and the FF-subarray
//! utilization study.
//!
//! Paper reference points: 5.76 % total chip overhead with 2 FF + 1
//! Buffer subarray per bank; inside an FF mat a 60 % area increase split
//! as driver 23 %, subtraction+sigmoid 29 %, control/mux 8 %; FF
//! utilization 39.8 % -> 75.9 % (MlBench average without VGG-D) and
//! 53.9 % -> 73.6 % (VGG-D) before -> after replication.

use prime_bench::archive_json;
use prime_sim::experiments::fig12;
use prime_sim::report::{format_table, to_json};

fn main() {
    let fig = fig12::run();
    println!("Figure 12: area overhead\n");
    println!(
        "total chip overhead: {:.2}%   (paper: 5.76%)",
        100.0 * fig.model.chip_overhead()
    );
    println!("FF-mat area increase: {:.0}%, split as:", 100.0 * fig.model.mat.total());
    println!("  multi-level voltage driver:  {:.0}%  (paper: 23%)", 100.0 * fig.model.mat.driver);
    println!(
        "  subtraction + sigmoid:       {:.0}%  (paper: 29%)",
        100.0 * fig.model.mat.subtraction_sigmoid
    );
    println!(
        "  control / multiplexers etc.: {:.0}%  (paper: 8%)",
        100.0 * fig.model.mat.control_mux
    );
    println!("\nFF-subarray utilization before/after replication:\n");
    let header: Vec<String> =
        ["benchmark", "before", "after"].iter().map(|s| s.to_string()).collect();
    let rows: Vec<Vec<String>> = fig
        .utilization
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                format!("{:.1}%", 100.0 * r.before),
                format!("{:.1}%", 100.0 * r.after),
            ]
        })
        .collect();
    println!("{}", format_table(&header, &rows));
    let (mut b, mut a) = (1.0, 1.0);
    let mut n = 0;
    for r in fig.utilization.iter().filter(|r| r.benchmark != "VGG-D") {
        b *= r.before;
        a *= r.after;
        n += 1;
    }
    println!(
        "MlBench (without VGG-D) gmean: {:.1}% -> {:.1}%  (paper: 39.8% -> 75.9%)",
        100.0 * b.powf(1.0 / n as f64),
        100.0 * a.powf(1.0 / n as f64)
    );
    archive_json("fig12_area", &to_json(&fig).expect("serializable result"));
}
