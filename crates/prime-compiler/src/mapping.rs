//! Compile-time NN mapping optimization (paper §IV-B1).
//!
//! The compiler lowers a [`NetworkSpec`] onto FF mats:
//!
//! * **Small-scale NNs** (fit one mat) are *replicated* within the mat —
//!   and onto spare mats — so the peripheral-circuit latency is amortized
//!   over several inputs processed simultaneously;
//! * **medium-scale NNs** (fit one bank's FF subarrays) are *split* into
//!   mat-sized tiles whose partial results are *merged* with adds;
//! * **large-scale NNs** use multiple banks with *inter-bank
//!   communication*, running stages as a pipeline.
//!
//! Convolution layers are lowered the way §III-E describes: all elements
//! of the kernels `g_{i,j}` for one output map are pre-programmed down a
//! bitline (`in_ch * k * k` rows plus one bias row, one column per output
//! map), and the layer is evaluated once per output pixel.

use serde::{Deserialize, Serialize};

use prime_nn::{LayerSpec, NetworkSpec};

use crate::error::CompileError;
use crate::target::HwTarget;

/// The paper's three mapping scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NnScale {
    /// Fits a single FF mat: replication applies.
    Small,
    /// Fits the FF subarrays of one bank: split-merge applies.
    Medium,
    /// Needs multiple banks: inter-bank pipelining applies.
    Large,
}

/// How weight codes are laid out across the placements of a layer.
///
/// A layer generally has more *placements* than unique weight tiles:
/// in-mat replication, spare-mat replicas, and whole-network copies
/// across banks all re-place the same codes. The strategy decides
/// whether each placement is programmed independently or references one
/// shared physical tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MappingStrategy {
    /// Every placement programs its own copy of the weight codes — the
    /// original PRIME heuristic, byte-for-byte identical mapping. Deploy
    /// writes and bank state scale with placements.
    ReplicateDense,
    /// Each unique weight tile (e.g. a conv kernel matrix) is programmed
    /// once; every other placement references the shared tile. Deploy
    /// writes and bank state scale with unique weights.
    SharedKernel,
}

impl MappingStrategy {
    /// Stable lowercase name, for reports and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            MappingStrategy::ReplicateDense => "replicate-dense",
            MappingStrategy::SharedKernel => "shared-kernel",
        }
    }
}

/// What the mapping search optimizes for.
///
/// `Fixed` reproduces the pre-search behavior exactly: one strategy, no
/// candidate enumeration, bit-identical placement. The other objectives
/// enumerate (strategy × replication factor × pipeline split) candidates,
/// keep only those the Pass 1–3 verifiers accept, score each with a
/// `MappingCostModel` implementation (`prime-core`), and deploy the
/// argmin. Candidates are ordered fixed-default-first and the argmin
/// keeps the first of any tie, so a search that finds nothing better
/// than the default degrades to the `Fixed` placement byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Objective {
    /// No search: compile with exactly this strategy (bit-compat path).
    Fixed(MappingStrategy),
    /// Minimize the pipeline-interval / per-image latency estimate.
    Latency,
    /// Minimize resident weight cells, breaking ties by latency.
    Memory,
    /// Minimize normalized latency + normalized resident cells.
    Balanced,
}

impl Objective {
    /// Stable lowercase name, for reports and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            Objective::Fixed(MappingStrategy::ReplicateDense) => "fixed-replicate-dense",
            Objective::Fixed(MappingStrategy::SharedKernel) => "fixed-shared-kernel",
            Objective::Latency => "latency",
            Objective::Memory => "memory",
            Objective::Balanced => "balanced",
        }
    }

    /// The strategy a plain (non-searching) compile uses under this
    /// objective: the pinned one for `Fixed`, the dense default otherwise.
    pub fn strategy(&self) -> MappingStrategy {
        match self {
            Objective::Fixed(s) => *s,
            _ => MappingStrategy::ReplicateDense,
        }
    }
}

/// Compiler knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompileOptions {
    /// Enable the replication optimization (paper enables it; disabling
    /// reproduces the "before replication" utilization numbers).
    pub replicate: bool,
    /// What to optimize for. [`map_network`] itself never searches — it
    /// compiles with [`Objective::strategy`]; the search driver in
    /// `prime-core` enumerates concrete `Fixed` candidates via
    /// [`enumerate_candidates`] and scores them. Each layer may
    /// individually fall back to [`MappingStrategy::ReplicateDense`] when
    /// sharing cannot win (see [`select_strategy`]).
    pub objective: Objective,
    /// Cap on the FF mats one inter-bank pipeline stage may hold
    /// (large-scale NNs only). `0` means a full bank — the paper's
    /// heuristic. A smaller cap splits the network into more, shorter
    /// stages, trading banks for a shorter bottleneck stage.
    pub stage_mats_cap: usize,
    /// Cap on whole-network copies across the memory's banks. `0` fills
    /// every bank (the paper's heuristic); a smaller cap leaves the
    /// remaining banks untouched as plain memory.
    pub max_copies: usize,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            replicate: true,
            objective: Objective::Fixed(MappingStrategy::ReplicateDense),
            stage_mats_cap: 0,
            max_copies: 0,
        }
    }
}

impl CompileOptions {
    /// The pre-search constructor: compile with exactly `strategy`,
    /// paper-default knobs.
    pub const fn fixed(strategy: MappingStrategy) -> Self {
        CompileOptions {
            replicate: true,
            objective: Objective::Fixed(strategy),
            stage_mats_cap: 0,
            max_copies: 0,
        }
    }

    /// The strategy this compile scores layers under.
    pub fn strategy(&self) -> MappingStrategy {
        self.objective.strategy()
    }
}

/// How one layer is laid onto FF mats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerMapping {
    /// The layer's shape.
    pub layer: LayerSpec,
    /// Crossbar rows the layer occupies (inputs + 1 bias row; 0 for
    /// pooling layers, which use the pooling hardware instead of mats).
    pub rows_needed: usize,
    /// Composed weight columns the layer occupies.
    pub cols_needed: usize,
    /// Number of row tiles after splitting (partial sums to merge).
    pub row_tiles: usize,
    /// Number of column tiles after splitting.
    pub col_tiles: usize,
    /// Mats holding one copy of the layer (`row_tiles * col_tiles`).
    pub base_mats: usize,
    /// Copies packed inside each mat (small layers only).
    pub in_mat_replication: usize,
    /// Additional whole-layer copies on spare mats.
    pub extra_replicas: usize,
    /// Input vectors the layer consumes per inference (1 for FC; one per
    /// output pixel for conv; one per pooled output for pooling).
    pub vectors_per_inference: usize,
    /// Scalar adds needed to merge row-tile partial sums, per inference.
    pub merge_adds: u64,
    /// The weight-layout strategy selected for this layer (the requested
    /// strategy, or [`MappingStrategy::ReplicateDense`] when the layer has
    /// no sharing opportunity).
    pub strategy: MappingStrategy,
    /// Placements that reference each unique weight tile of this layer
    /// (in-mat replication x replica mats x whole-network copies; 1 when
    /// nothing is replicated).
    pub tile_refs: usize,
}

impl LayerMapping {
    /// Crossbar evaluation passes per inference, after replication: the
    /// layer's input vectors are distributed over all copies.
    pub fn passes_per_inference(&self) -> u64 {
        if self.base_mats == 0 {
            return 0;
        }
        let copies = (self.in_mat_replication * (1 + self.extra_replicas)).max(1);
        (self.vectors_per_inference as u64).div_ceil(copies as u64)
    }

    /// Cells occupied by the layer's weights (one copy).
    pub fn used_cells(&self) -> u64 {
        (self.rows_needed * self.cols_needed) as u64
    }

    /// Total mats consumed including replicas.
    pub fn total_mats(&self) -> usize {
        self.base_mats * (1 + self.extra_replicas)
    }

    /// Deploy-footprint estimate for this layer: unique weight cells vs.
    /// the cells all placements would program under
    /// [`MappingStrategy::ReplicateDense`].
    pub fn footprint(&self) -> LayoutFootprint {
        let refs = self.tile_refs.max(1) as u64;
        LayoutFootprint {
            unique_tiles: self.base_mats,
            placements: self.base_mats * self.tile_refs.max(1),
            unique_cells: self.used_cells(),
            placed_cells: self.used_cells() * refs,
        }
    }
}

/// Estimated deploy footprint of a layer or network: how many weight
/// cells each strategy programs (and keeps resident) once every
/// placement — in-mat replication, spare-mat replicas, whole-network
/// copies — is accounted for.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayoutFootprint {
    /// Unique weight tiles (mats holding distinct codes).
    pub unique_tiles: usize,
    /// Tile placements across all replication dimensions.
    pub placements: usize,
    /// Composed weight cells programmed under `SharedKernel`.
    pub unique_cells: u64,
    /// Composed weight cells programmed under `ReplicateDense`.
    pub placed_cells: u64,
}

impl LayoutFootprint {
    /// Cells a deployment programs under `strategy`.
    pub fn cells_for(&self, strategy: MappingStrategy) -> u64 {
        match strategy {
            MappingStrategy::ReplicateDense => self.placed_cells,
            MappingStrategy::SharedKernel => self.unique_cells,
        }
    }

    fn accumulate(&mut self, other: LayoutFootprint) {
        self.unique_tiles += other.unique_tiles;
        self.placements += other.placements;
        self.unique_cells += other.unique_cells;
        self.placed_cells += other.placed_cells;
    }
}

/// Scores a layer under the requested strategy and picks the layout it
/// actually deploys with: `SharedKernel` is selected only when sharing
/// strictly wins (more than one placement would otherwise duplicate the
/// codes); everything else falls back to `ReplicateDense`, which the
/// verifier reports as the Info-severity `P023`.
pub fn select_strategy(layer: &LayerMapping, requested: MappingStrategy) -> MappingStrategy {
    match requested {
        MappingStrategy::ReplicateDense => MappingStrategy::ReplicateDense,
        MappingStrategy::SharedKernel => {
            let f = layer.footprint();
            if layer.base_mats > 0 && f.unique_cells < f.placed_cells {
                MappingStrategy::SharedKernel
            } else {
                MappingStrategy::ReplicateDense
            }
        }
    }
}

/// In-flight packet budget of the §IV-B thread-per-stage pipeline
/// engine: how many activation vectors may circulate before stage 0
/// blocks on the recycle channel. Two per stage keeps every stage busy
/// (one packet in flight, one queued) while bounding steady-state
/// allocation; the floor of 1 guarantees the recycle loop can always
/// admit the first packet, which the stage-graph deadlock check (P030)
/// relies on. Single source of truth for the runtime engine, the plan
/// metadata the runner exports, and the static verifier.
pub fn pipeline_credits(stages: usize) -> usize {
    (2 * stages).max(1)
}

/// One stage of an inter-bank pipeline (large-scale NNs).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineStage {
    /// Bank (relative to the NN's first bank) hosting the stage.
    pub bank: usize,
    /// Indices into the mapping's layer list.
    pub layers: Vec<usize>,
    /// Mats the stage occupies.
    pub mats: usize,
}

/// The complete mapping of a network onto PRIME.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkMapping {
    /// Workload name.
    pub name: String,
    /// Per-layer mappings.
    pub layers: Vec<LayerMapping>,
    /// Mapping scale class.
    pub scale: NnScale,
    /// Mats for one copy of the network.
    pub base_mats: usize,
    /// Banks one copy of the network occupies.
    pub banks_per_copy: usize,
    /// Mats reserved (bank granularity: all FF mats of every used bank).
    pub allocated_mats: usize,
    /// FF utilization before replication (used cells / allocated cells).
    pub utilization_before: f64,
    /// FF utilization after replication.
    pub utilization_after: f64,
    /// Independent copies of the whole NN across the memory's banks
    /// (bank-level parallelism: images processed concurrently).
    pub copies_across_memory: usize,
    /// Inter-bank pipeline stages (empty unless large-scale).
    pub pipeline: Vec<PipelineStage>,
    /// The strategy the compile was requested with (individual layers may
    /// have fallen back; see [`LayerMapping::strategy`]).
    pub strategy: MappingStrategy,
}

impl NetworkMapping {
    /// Total crossbar passes per inference (sum over weight layers).
    pub fn passes_per_inference(&self) -> u64 {
        self.layers.iter().map(LayerMapping::passes_per_inference).sum()
    }

    /// Total merge adds per inference.
    pub fn merge_adds_per_inference(&self) -> u64 {
        self.layers.iter().map(|l| l.merge_adds).sum()
    }

    /// Whole-network deploy-footprint estimate (sum of layer footprints).
    pub fn footprint(&self) -> LayoutFootprint {
        let mut total = LayoutFootprint::default();
        for layer in &self.layers {
            total.accumulate(layer.footprint());
        }
        total
    }

    /// Footprint restricted to convolution layers — the kernel tiles the
    /// `SharedKernel` strategy exists for.
    pub fn conv_footprint(&self) -> LayoutFootprint {
        let mut total = LayoutFootprint::default();
        for layer in &self.layers {
            if matches!(layer.layer, LayerSpec::Conv { .. }) {
                total.accumulate(layer.footprint());
            }
        }
        total
    }

    /// Weight cells this mapping programs at deploy, honoring each
    /// layer's selected strategy.
    pub fn deploy_cells(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.footprint().cells_for(l.strategy))
            .sum()
    }
}

fn lower_layer(spec: &LayerSpec, hw: &HwTarget) -> Result<LayerMapping, CompileError> {
    let (rows_needed, cols_needed, vectors) = match *spec {
        LayerSpec::FullyConnected { inputs, outputs } => (inputs + 1, outputs, 1),
        LayerSpec::Conv { in_ch, out_ch, kernel, in_h, in_w, padding } => {
            let oh = in_h + 2 * padding - kernel + 1;
            let ow = in_w + 2 * padding - kernel + 1;
            (in_ch * kernel * kernel + 1, out_ch, oh * ow)
        }
        LayerSpec::Pool { .. } | LayerSpec::Lrn { .. } => {
            // Pooling runs on the dedicated pooling hardware and LRN falls
            // back to the CPU (paper §III-E); neither occupies weight mats.
            return Ok(LayerMapping {
                layer: *spec,
                rows_needed: 0,
                cols_needed: 0,
                row_tiles: 0,
                col_tiles: 0,
                base_mats: 0,
                in_mat_replication: 1,
                extra_replicas: 0,
                vectors_per_inference: spec.outputs(),
                merge_adds: 0,
                strategy: MappingStrategy::ReplicateDense,
                tile_refs: 1,
            });
        }
    };
    let row_tiles = rows_needed.div_ceil(hw.mat_rows);
    let col_tiles = cols_needed.div_ceil(hw.mat_cols);
    let base_mats = row_tiles
        .checked_mul(col_tiles)
        .ok_or(CompileError::LayerTooLarge { layer: spec.describe() })?;
    // Split-merge cost: merging R row tiles takes R-1 adds per output.
    let merge_adds = (row_tiles as u64 - 1) * cols_needed as u64 * vectors as u64;
    Ok(LayerMapping {
        layer: *spec,
        rows_needed,
        cols_needed,
        row_tiles,
        col_tiles,
        base_mats,
        in_mat_replication: 1,
        extra_replicas: 0,
        vectors_per_inference: vectors,
        merge_adds,
        strategy: MappingStrategy::ReplicateDense,
        tile_refs: 1,
    })
}

/// Applies the small-scale in-mat replication rule: a layer occupying at
/// most half the rows or columns of a mat is duplicated into the unused
/// portion (paper's `128-1 -> 256-2` example).
fn apply_in_mat_replication(layer: &mut LayerMapping, hw: &HwTarget) {
    if layer.base_mats != 1 {
        return;
    }
    let by_rows = hw.mat_rows / layer.rows_needed.max(1);
    let by_cols = hw.mat_cols / layer.cols_needed.max(1);
    layer.in_mat_replication = by_rows.min(by_cols).max(1);
}

/// Greedily fills spare allocated mats with extra copies of the layer
/// whose pass count currently bottlenecks the inference.
fn apply_mat_replication(layers: &mut [LayerMapping], mut spare: usize) {
    while let Some((idx, _)) = layers
        .iter()
        .enumerate()
        .filter(|(_, l)| l.base_mats > 0 && l.base_mats <= spare && l.passes_per_inference() > 1)
        .max_by_key(|(_, l)| l.passes_per_inference())
    {
        layers[idx].extra_replicas += 1;
        spare -= layers[idx].base_mats;
    }
}

/// Maps a network spec onto the hardware target.
///
/// # Errors
///
/// Returns [`CompileError::CapacityExceeded`] if the network does not fit
/// the memory's FF mats even without replication.
///
/// # Examples
///
/// ```
/// use prime_compiler::{map_network, CompileOptions, HwTarget, NnScale};
/// use prime_nn::MlBench;
///
/// let hw = HwTarget::prime_default();
/// let mapping = map_network(&MlBench::MlpS.spec(), &hw, CompileOptions::default())?;
/// assert_eq!(mapping.scale, NnScale::Medium);
/// assert_eq!(mapping.copies_across_memory, 64); // bank-level parallelism
/// # Ok::<(), prime_compiler::CompileError>(())
/// ```
pub fn map_network(
    spec: &NetworkSpec,
    hw: &HwTarget,
    options: CompileOptions,
) -> Result<NetworkMapping, CompileError> {
    let mut layers = spec
        .layers()
        .iter()
        .map(|l| lower_layer(l, hw))
        .collect::<Result<Vec<_>, _>>()?;
    let base_mats: usize = layers.iter().map(|l| l.base_mats).sum();
    if base_mats > hw.total_mats() {
        return Err(CompileError::CapacityExceeded {
            required: base_mats,
            available: hw.total_mats(),
        });
    }
    let banks_per_copy = base_mats.div_ceil(hw.mats_per_bank()).max(1);
    let scale = if base_mats <= 1 {
        NnScale::Small
    } else if banks_per_copy == 1 {
        NnScale::Medium
    } else {
        NnScale::Large
    };
    // Banks that cannot host a whole extra copy still contribute their FF
    // mats as replication space, shared evenly among the copies (paper
    // §IV-B2: spare banks host replicas of large NNs). A copy cap keeps
    // the spare banks as plain memory instead.
    let fill_copies = (hw.banks / banks_per_copy).max(1);
    let (copies, leftover_banks) = if options.max_copies > 0 && options.max_copies < fill_copies {
        (options.max_copies, 0)
    } else {
        (fill_copies, hw.banks - fill_copies * banks_per_copy)
    };
    let allocated_mats =
        banks_per_copy * hw.mats_per_bank() + leftover_banks * hw.mats_per_bank() / copies;
    let allocated_cells = allocated_mats as u64 * hw.synapses_per_mat();
    let used_cells: u64 = layers.iter().map(LayerMapping::used_cells).sum();
    let utilization_before = used_cells as f64 / allocated_cells as f64;

    if options.replicate {
        for layer in &mut layers {
            apply_in_mat_replication(layer, hw);
        }
        let spare = allocated_mats - base_mats;
        apply_mat_replication(&mut layers, spare);
    }
    let used_after: u64 = layers
        .iter()
        .map(|l| l.used_cells() * (l.in_mat_replication as u64) * (1 + l.extra_replicas as u64))
        .sum();
    let utilization_after =
        (used_after as f64 / allocated_cells as f64).min(1.0).max(utilization_before);

    let pipeline = if scale == NnScale::Large {
        assign_pipeline(&layers, hw, options.stage_mats_cap)
    } else {
        Vec::new()
    };
    // A stage cap splits the pipeline over more banks than the packed
    // estimate assumed; recompute the per-copy span (and the copy count
    // that depends on it) from the stages actually laid out.
    let (banks_per_copy, copies) = if let (true, Some(last)) =
        (options.stage_mats_cap > 0, pipeline.last())
    {
        let spanned = last.bank + last.mats.div_ceil(hw.mats_per_bank()).max(1);
        if spanned > hw.banks {
            return Err(CompileError::CapacityExceeded {
                required: spanned * hw.mats_per_bank(),
                available: hw.total_mats(),
            });
        }
        let fill = (hw.banks / spanned).max(1);
        let capped = if options.max_copies > 0 { fill.min(options.max_copies) } else { fill };
        (spanned, capped)
    } else {
        (banks_per_copy, copies)
    };
    let copies_across_memory = copies;

    // Score each layer's layout: how many placements would duplicate its
    // codes, and whether sharing one physical tile among them wins.
    for layer in &mut layers {
        layer.tile_refs = (layer.in_mat_replication
            * (1 + layer.extra_replicas)
            * copies_across_memory)
            .max(1);
        layer.strategy = select_strategy(layer, options.strategy());
    }

    Ok(NetworkMapping {
        name: spec.name().to_string(),
        layers,
        scale,
        base_mats,
        banks_per_copy,
        allocated_mats,
        utilization_before,
        utilization_after,
        copies_across_memory,
        pipeline,
        strategy: options.strategy(),
    })
}

/// Enumerates the candidate mapping space the search driver scores:
/// both weight-layout strategies crossed with the pipeline-split and
/// replication-factor knobs that make sense for this network on this
/// target. Every candidate compiles with `replicate: false` (deploy
/// semantics) and a pinned [`Objective::Fixed`] strategy.
///
/// The fixed-default candidate (`ReplicateDense`, paper knobs) comes
/// first so a strict-argmin search that finds no strictly better
/// candidate keeps the bit-compatible placement. Knob values are derived
/// from the base mapping: pipeline-split caps only for large-scale NNs,
/// copy caps only when the memory holds more than one copy. The cap
/// dimensions are not cross-multiplied — the space stays small (≤ ~10)
/// and every point differs from the default in one lever.
pub fn enumerate_candidates(spec: &NetworkSpec, hw: &HwTarget) -> Vec<CompileOptions> {
    const STRATEGIES: [MappingStrategy; 2] =
        [MappingStrategy::ReplicateDense, MappingStrategy::SharedKernel];
    fn deploy_opts(strategy: MappingStrategy, cap: usize, max_copies: usize) -> CompileOptions {
        CompileOptions {
            replicate: false,
            objective: Objective::Fixed(strategy),
            stage_mats_cap: cap,
            max_copies,
        }
    }
    let mut out: Vec<CompileOptions> = Vec::new();
    let push = |out: &mut Vec<CompileOptions>, o: CompileOptions| {
        if !out.contains(&o) {
            out.push(o);
        }
    };
    for s in STRATEGIES {
        push(&mut out, deploy_opts(s, 0, 0));
    }
    let Ok(base) = map_network(spec, hw, deploy_opts(MappingStrategy::ReplicateDense, 0, 0))
    else {
        // An unmappable network leaves only the fixed candidates, which
        // the search driver will prune with the same compile error the
        // fixed path reports.
        return out;
    };
    let mpb = hw.mats_per_bank();
    if base.scale == NnScale::Large {
        for cap in [mpb / 2, mpb / 4] {
            if cap >= 1 && cap < mpb {
                for s in STRATEGIES {
                    push(&mut out, deploy_opts(s, cap, 0));
                }
            }
        }
    }
    let fill = base.copies_across_memory;
    if fill > 1 {
        for c in [fill / 2, 1] {
            if c >= 1 && c < fill {
                for s in STRATEGIES {
                    push(&mut out, deploy_opts(s, 0, c));
                }
            }
        }
    }
    out
}

/// Greedy in-order bin packing of layers into banks for the inter-bank
/// pipeline: consecutive layers share a bank until its FF mats run out.
/// A nonzero `stage_mats_cap` shrinks the per-stage budget below a full
/// bank, splitting the network into more, shorter stages; stage banks
/// still advance one physical bank per stage.
fn assign_pipeline(
    layers: &[LayerMapping],
    hw: &HwTarget,
    stage_mats_cap: usize,
) -> Vec<PipelineStage> {
    let bank_mats = hw.mats_per_bank();
    let capacity = if stage_mats_cap > 0 { stage_mats_cap.min(bank_mats) } else { bank_mats }
        .max(1);
    let mut stages: Vec<PipelineStage> = Vec::new();
    let mut current = PipelineStage { bank: 0, layers: Vec::new(), mats: 0 };
    for (idx, layer) in layers.iter().enumerate() {
        // Replicated copies occupy real mats and must be placed too.
        let need = layer.total_mats();
        if need > capacity {
            // A single layer larger than the stage budget gets its own
            // stage; when it outgrows a physical bank it spans several.
            if !current.layers.is_empty() {
                let bank = current.bank;
                stages.push(std::mem::replace(
                    &mut current,
                    PipelineStage { bank: bank + 1, layers: Vec::new(), mats: 0 },
                ));
            }
            let banks_spanned = need.div_ceil(bank_mats).max(1);
            stages.push(PipelineStage { bank: current.bank, layers: vec![idx], mats: need });
            current.bank += banks_spanned;
            continue;
        }
        if current.mats + need > capacity {
            let bank = current.bank;
            stages.push(std::mem::replace(
                &mut current,
                PipelineStage { bank: bank + 1, layers: Vec::new(), mats: 0 },
            ));
        }
        current.layers.push(idx);
        current.mats += need;
    }
    if !current.layers.is_empty() {
        stages.push(current);
    }
    stages
}

#[cfg(test)]
mod tests {
    use super::*;
    use prime_nn::MlBench;

    fn hw() -> HwTarget {
        HwTarget::prime_default()
    }

    fn opts(replicate: bool) -> CompileOptions {
        CompileOptions { replicate, ..CompileOptions::default() }
    }

    #[test]
    fn mlp_s_is_medium_scale() {
        let m = map_network(&MlBench::MlpS.spec(), &hw(), CompileOptions::default()).unwrap();
        assert_eq!(m.scale, NnScale::Medium);
        assert_eq!(m.banks_per_copy, 1);
        assert_eq!(m.copies_across_memory, 64);
        assert!(m.pipeline.is_empty());
    }

    #[test]
    fn split_merge_arithmetic_mlp_s() {
        // 784-500: rows 785 -> 4 row tiles; cols 500 -> 4 col tiles.
        let m = map_network(&MlBench::MlpS.spec(), &hw(), CompileOptions::default()).unwrap();
        let l0 = &m.layers[0];
        assert_eq!(l0.row_tiles, 4);
        assert_eq!(l0.col_tiles, 4);
        assert_eq!(l0.base_mats, 16);
        assert_eq!(l0.merge_adds, 3 * 500);
    }

    #[test]
    fn conv_is_lowered_to_kernel_matrix() {
        let m = map_network(&MlBench::Cnn1.spec(), &hw(), CompileOptions::default()).unwrap();
        let conv = &m.layers[0];
        // 1 channel x 5x5 kernel + bias = 26 rows, 5 output maps.
        assert_eq!(conv.rows_needed, 26);
        assert_eq!(conv.cols_needed, 5);
        assert_eq!(conv.base_mats, 1);
        assert_eq!(conv.vectors_per_inference, 24 * 24);
        // Small layer in one mat: heavy in-mat replication.
        assert!(conv.in_mat_replication >= 9, "got {}", conv.in_mat_replication);
    }

    #[test]
    fn pooling_consumes_no_mats() {
        let m = map_network(&MlBench::Cnn1.spec(), &hw(), CompileOptions::default()).unwrap();
        let pool = &m.layers[1];
        assert_eq!(pool.base_mats, 0);
        assert_eq!(pool.passes_per_inference(), 0);
    }

    #[test]
    fn replication_reduces_passes_and_raises_utilization() {
        let spec = MlBench::Cnn1.spec();
        let without =
            map_network(&spec, &hw(), opts(false)).unwrap();
        let with = map_network(&spec, &hw(), opts(true)).unwrap();
        assert!(with.passes_per_inference() < without.passes_per_inference());
        assert!(with.utilization_after > without.utilization_before);
    }

    #[test]
    fn vgg_d_is_large_scale_with_pipeline() {
        let m = map_network(&MlBench::VggD.spec(), &hw(), CompileOptions::default()).unwrap();
        assert_eq!(m.scale, NnScale::Large);
        assert!(m.banks_per_copy > 1, "VGG-D must span banks: {}", m.banks_per_copy);
        assert!(!m.pipeline.is_empty());
        assert!(m.copies_across_memory >= 1);
        // Every layer appears in exactly one stage, in order.
        let staged: Vec<usize> =
            m.pipeline.iter().flat_map(|s| s.layers.iter().copied()).collect();
        assert_eq!(staged, (0..m.layers.len()).collect::<Vec<_>>());
        // No stage exceeds one bank unless a single layer forced it.
        for stage in &m.pipeline {
            assert!(
                stage.mats <= hw().mats_per_bank() || stage.layers.len() == 1,
                "stage overflow: {stage:?}"
            );
        }
    }

    #[test]
    fn oversized_layer_gets_its_own_multibank_stage() {
        // Two-mat banks; a 1000x500 FC layer tiles to 4x4 = 16 mats —
        // eight banks on its own — followed by a two-mat layer.
        let target = HwTarget {
            mat_rows: 256,
            mat_cols: 128,
            mats_per_ff_subarray: 1,
            ff_subarrays_per_bank: 2,
            banks: 16,
        };
        let spec = prime_nn::NetworkSpec::new(
            "oversized",
            vec![
                LayerSpec::FullyConnected { inputs: 1000, outputs: 500 },
                LayerSpec::FullyConnected { inputs: 500, outputs: 10 },
            ],
        )
        .unwrap();
        let m = map_network(&spec, &target, opts(false)).unwrap();
        assert_eq!(m.scale, NnScale::Large);
        assert_eq!(m.layers[0].base_mats, 16);
        assert_eq!(m.pipeline.len(), 2);
        assert_eq!(m.pipeline[0].bank, 0);
        assert_eq!(m.pipeline[0].layers, vec![0]);
        assert_eq!(m.pipeline[0].mats, 16);
        // The next stage's bank skips every bank the oversized stage
        // spans (16 mats / 2 mats per bank = 8 banks).
        assert_eq!(m.pipeline[1].bank, 8);
        assert_eq!(m.pipeline[1].layers, vec![1]);
    }

    #[test]
    fn pipeline_banks_strictly_increase_with_contiguous_coverage() {
        for options in [opts(false), CompileOptions::default()] {
            let m = map_network(&MlBench::VggD.spec(), &hw(), options).unwrap();
            assert!(!m.pipeline.is_empty());
            let mut next_layer = 0usize;
            let mut prev_bank: Option<usize> = None;
            for stage in &m.pipeline {
                assert!(
                    prev_bank.is_none_or(|p| stage.bank > p),
                    "stage banks must strictly increase: {:?}",
                    m.pipeline
                );
                prev_bank = Some(stage.bank);
                assert!(!stage.layers.is_empty(), "empty stage");
                for &l in &stage.layers {
                    assert_eq!(l, next_layer, "layer coverage must be contiguous in order");
                    next_layer += 1;
                }
            }
            assert_eq!(next_layer, m.layers.len(), "pipeline must cover every layer");
        }
    }

    #[test]
    fn shared_kernel_is_selected_only_where_sharing_wins() {
        let options =
            CompileOptions { replicate: true, ..CompileOptions::fixed(MappingStrategy::SharedKernel) };
        let m = map_network(&MlBench::Cnn1.spec(), &hw(), options).unwrap();
        assert_eq!(m.strategy, MappingStrategy::SharedKernel);
        let conv = &m.layers[0];
        // The heavily replicated conv kernel shares one physical tile.
        assert_eq!(conv.strategy, MappingStrategy::SharedKernel);
        assert!(conv.tile_refs > 1, "got {}", conv.tile_refs);
        // Pooling layers own no weight tiles and stay dense.
        assert_eq!(m.layers[1].strategy, MappingStrategy::ReplicateDense);
        // Footprint arithmetic: dense cells grow with placements.
        let f = conv.footprint();
        assert_eq!(f.placed_cells, f.unique_cells * conv.tile_refs as u64);
        assert_eq!(f.placements, conv.base_mats * conv.tile_refs);
        assert!(m.deploy_cells() < m.footprint().placed_cells);
        assert!(m.conv_footprint().placed_cells <= m.footprint().placed_cells);
    }

    #[test]
    fn layers_without_sharing_opportunity_fall_back_to_dense() {
        // VGG-D spans 64 banks with one copy and no replication: every
        // tile already has exactly one placement, so SharedKernel cannot
        // win anywhere and each layer falls back.
        let options =
            CompileOptions { replicate: false, ..CompileOptions::fixed(MappingStrategy::SharedKernel) };
        let m = map_network(&MlBench::VggD.spec(), &hw(), options).unwrap();
        assert_eq!(m.strategy, MappingStrategy::SharedKernel);
        for layer in &m.layers {
            assert_eq!(layer.strategy, MappingStrategy::ReplicateDense);
            assert_eq!(layer.tile_refs, 1);
        }
        assert_eq!(m.deploy_cells(), m.footprint().placed_cells);
    }

    #[test]
    fn strategy_choice_never_perturbs_the_placement() {
        // SharedKernel only changes how codes are programmed, not where
        // tiles go: everything except the per-layer strategy/footprint
        // metadata matches the ReplicateDense mapping exactly.
        for bench in MlBench::ALL {
            let dense = map_network(&bench.spec(), &hw(), CompileOptions::default()).unwrap();
            let shared = map_network(
                &bench.spec(),
                &hw(),
                CompileOptions {
                    replicate: true,
                    ..CompileOptions::fixed(MappingStrategy::SharedKernel)
                },
            )
            .unwrap();
            assert_eq!(dense.layers.len(), shared.layers.len());
            for (d, s) in dense.layers.iter().zip(&shared.layers) {
                let mut s_as_dense = *s;
                s_as_dense.strategy = d.strategy;
                assert_eq!(&s_as_dense, d, "{} placement drifted", bench.name());
            }
            assert_eq!(dense.pipeline, shared.pipeline);
            assert_eq!(dense.allocated_mats, shared.allocated_mats);
        }
    }

    #[test]
    fn capacity_errors_on_impossible_networks() {
        let tiny = HwTarget {
            mat_rows: 16,
            mat_cols: 8,
            mats_per_ff_subarray: 1,
            ff_subarrays_per_bank: 1,
            banks: 1,
        };
        let err = map_network(&MlBench::MlpL.spec(), &tiny, CompileOptions::default());
        assert!(matches!(err, Err(CompileError::CapacityExceeded { .. })));
    }

    #[test]
    fn all_mlbench_networks_fit_prime() {
        for bench in MlBench::ALL {
            let m = map_network(&bench.spec(), &hw(), CompileOptions::default()).unwrap();
            assert!(m.base_mats <= hw().total_mats(), "{} does not fit", bench.name());
        }
    }

    #[test]
    fn stage_cap_splits_the_pipeline_into_more_stages() {
        let spec = MlBench::VggD.spec();
        let base = map_network(&spec, &hw(), CompileOptions { replicate: false, ..CompileOptions::default() }).unwrap();
        let capped_opts = CompileOptions {
            replicate: false,
            stage_mats_cap: hw().mats_per_bank() / 2,
            ..CompileOptions::default()
        };
        let capped = map_network(&spec, &hw(), capped_opts).unwrap();
        assert!(
            capped.pipeline.len() > base.pipeline.len(),
            "cap {} did not split: {} vs {} stages",
            capped_opts.stage_mats_cap,
            capped.pipeline.len(),
            base.pipeline.len()
        );
        // Every capped stage respects the budget unless one layer forced it.
        for stage in &capped.pipeline {
            assert!(
                stage.mats <= capped_opts.stage_mats_cap || stage.layers.len() == 1,
                "stage over budget: {stage:?}"
            );
        }
        // The per-copy span is derived from the stages actually laid out.
        let last = capped.pipeline.last().unwrap();
        let spanned = last.bank + last.mats.div_ceil(hw().mats_per_bank()).max(1);
        assert_eq!(capped.banks_per_copy, spanned);
        assert_eq!(capped.copies_across_memory, (hw().banks / spanned).max(1));
        // A zero cap is byte-for-byte the uncapped mapping.
        let zero = map_network(
            &spec,
            &hw(),
            CompileOptions { replicate: false, stage_mats_cap: 0, ..CompileOptions::default() },
        )
        .unwrap();
        assert_eq!(zero, base);
    }

    #[test]
    fn copy_cap_limits_bank_level_parallelism() {
        let spec = MlBench::MlpS.spec();
        let base = map_network(&spec, &hw(), CompileOptions::default()).unwrap();
        assert_eq!(base.copies_across_memory, 64);
        let capped = map_network(
            &spec,
            &hw(),
            CompileOptions { max_copies: 4, ..CompileOptions::default() },
        )
        .unwrap();
        assert_eq!(capped.copies_across_memory, 4);
        // Uncommitted banks stay plain memory: only the per-copy span is
        // allocated, with no leftover-bank replication space.
        assert_eq!(capped.allocated_mats, capped.banks_per_copy * hw().mats_per_bank());
        // A cap at or above the fill count changes nothing.
        let loose = map_network(
            &spec,
            &hw(),
            CompileOptions { max_copies: 64, ..CompileOptions::default() },
        )
        .unwrap();
        assert_eq!(loose, base);
    }

    #[test]
    fn candidate_space_leads_with_the_fixed_default() {
        for bench in MlBench::ALL {
            let candidates = enumerate_candidates(&bench.spec(), &hw());
            let first = candidates.first().expect("at least the fixed candidates");
            assert_eq!(
                *first,
                CompileOptions { replicate: false, ..CompileOptions::default() },
                "{}: fixed default must come first for tie bit-compat",
                bench.name()
            );
            // Deploy semantics, pinned strategies, no duplicates.
            for (i, c) in candidates.iter().enumerate() {
                assert!(!c.replicate, "{}: candidate {i} replicates", bench.name());
                assert!(matches!(c.objective, Objective::Fixed(_)));
                assert!(!candidates[..i].contains(c), "{}: duplicate candidate", bench.name());
            }
            assert!(candidates.len() >= 2 && candidates.len() <= 10);
            // Every candidate either maps or reports a typed compile error.
            for c in &candidates {
                let _ = map_network(&bench.spec(), &hw(), *c);
            }
        }
    }

    #[test]
    fn candidate_space_scales_with_the_network() {
        // Large-scale VGG-D gets pipeline-split candidates; copy-cap
        // candidates appear only when the memory holds more than one copy.
        let vgg = enumerate_candidates(&MlBench::VggD.spec(), &hw());
        assert!(
            vgg.iter().any(|c| c.stage_mats_cap > 0),
            "large-scale nets must offer pipeline splits: {vgg:?}"
        );
        // Medium-scale MLP-S gets copy caps but no stage caps.
        let mlp = enumerate_candidates(&MlBench::MlpS.spec(), &hw());
        assert!(mlp.iter().all(|c| c.stage_mats_cap == 0));
        assert!(mlp.iter().any(|c| c.max_copies > 0));
    }

    #[test]
    fn objective_names_and_strategies_are_stable() {
        assert_eq!(Objective::Latency.name(), "latency");
        assert_eq!(Objective::Memory.name(), "memory");
        assert_eq!(Objective::Balanced.name(), "balanced");
        assert_eq!(
            Objective::Fixed(MappingStrategy::SharedKernel).name(),
            "fixed-shared-kernel"
        );
        assert_eq!(
            Objective::Fixed(MappingStrategy::SharedKernel).strategy(),
            MappingStrategy::SharedKernel
        );
        assert_eq!(Objective::Latency.strategy(), MappingStrategy::ReplicateDense);
        assert_eq!(
            CompileOptions::fixed(MappingStrategy::SharedKernel).strategy(),
            MappingStrategy::SharedKernel
        );
    }
}
