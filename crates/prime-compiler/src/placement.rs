//! OS data placement for bank-level parallelism (paper §IV-B2).
//!
//! PRIME's FF subarrays live in every bank, so the memory holds as many
//! independent NPUs as banks (64). To exploit them, the OS must place
//! one image per bank and distribute images evenly: PRIME exposes the
//! bank ID to the OS (like the page-placement work it cites) and the
//! allocator assigns image pages round-robin over the banks that hold a
//! copy of the network.

use serde::{Deserialize, Serialize};

use crate::error::CompileError;
use crate::mapping::NetworkMapping;

/// The bank assignment of one batch of images.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImagePlacement {
    /// `assignment[i]` = first bank of the NN copy processing image `i`.
    assignment: Vec<usize>,
    /// Banks per NN copy.
    banks_per_copy: usize,
    /// Copies available.
    copies: usize,
}

impl ImagePlacement {
    /// Places `images` across the copies of a mapped network,
    /// round-robin (the paper's "evenly distribute images to all the
    /// banks").
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::InvalidTarget`] if the mapping has no
    /// copies (cannot happen for a mapping produced by `map_network`).
    pub fn round_robin(mapping: &NetworkMapping, images: usize) -> Result<Self, CompileError> {
        if mapping.copies_across_memory == 0 {
            return Err(CompileError::InvalidTarget { reason: "mapping has no copies" });
        }
        let assignment = (0..images)
            .map(|i| (i % mapping.copies_across_memory) * mapping.banks_per_copy)
            .collect();
        Ok(ImagePlacement {
            assignment,
            banks_per_copy: mapping.banks_per_copy,
            copies: mapping.copies_across_memory,
        })
    }

    /// The first bank of the copy assigned to `image`.
    pub fn bank_of(&self, image: usize) -> Option<usize> {
        self.assignment.get(image).copied()
    }

    /// Images assigned to the copy starting at `bank`.
    pub fn images_on(&self, bank: usize) -> usize {
        self.assignment.iter().filter(|&&b| b == bank).count()
    }

    /// Largest per-copy image count — the makespan driver.
    pub fn max_load(&self) -> usize {
        (0..self.copies).map(|c| self.images_on(c * self.banks_per_copy)).max().unwrap_or(0)
    }

    /// Whether the placement is balanced (loads differ by at most one).
    pub fn is_balanced(&self) -> bool {
        let loads: Vec<usize> =
            (0..self.copies).map(|c| self.images_on(c * self.banks_per_copy)).collect();
        let (min, max) =
            (loads.iter().min().copied().unwrap_or(0), loads.iter().max().copied().unwrap_or(0));
        max - min <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{map_network, CompileOptions};
    use crate::target::HwTarget;
    use prime_nn::MlBench;

    fn mapping(bench: MlBench) -> NetworkMapping {
        map_network(&bench.spec(), &HwTarget::prime_default(), CompileOptions::default())
            .expect("fits")
    }

    #[test]
    fn medium_networks_spread_over_all_64_banks() {
        let m = mapping(MlBench::MlpS);
        let p = ImagePlacement::round_robin(&m, 64).unwrap();
        assert!(p.is_balanced());
        assert_eq!(p.max_load(), 1);
        // Every copy gets exactly one image.
        for c in 0..64 {
            assert_eq!(p.images_on(c), 1);
        }
    }

    #[test]
    fn oversubscribed_batches_stay_balanced() {
        let m = mapping(MlBench::Cnn1);
        let p = ImagePlacement::round_robin(&m, 100).unwrap();
        assert!(p.is_balanced());
        assert_eq!(p.max_load(), 2); // 100 images over 64 copies
    }

    #[test]
    fn large_networks_funnel_through_one_copy() {
        let m = mapping(MlBench::VggD);
        let p = ImagePlacement::round_robin(&m, 10).unwrap();
        assert_eq!(p.max_load(), 10);
        assert_eq!(p.bank_of(0), Some(0));
        assert_eq!(p.bank_of(9), Some(0));
    }

    #[test]
    fn bank_of_is_none_past_the_batch() {
        let m = mapping(MlBench::MlpM);
        let p = ImagePlacement::round_robin(&m, 4).unwrap();
        assert_eq!(p.bank_of(4), None);
    }
}
