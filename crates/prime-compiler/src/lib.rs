//! Compile-time NN-to-crossbar mapping for PRIME (paper §IV-B).
//!
//! Lowers [`prime_nn::NetworkSpec`]s onto the FF-mat resources of a
//! [`HwTarget`]: small NNs are replicated to amortize peripheral latency,
//! medium NNs are split into mat tiles and merged with adds, and large
//! NNs are pipelined across banks with inter-bank communication. The
//! resulting [`NetworkMapping`] drives both the functional executor
//! (`prime-core`) and the performance/energy simulator (`prime-sim`).
//!
//! # Examples
//!
//! ```
//! use prime_compiler::{map_network, CompileOptions, HwTarget};
//! use prime_nn::MlBench;
//!
//! let hw = HwTarget::prime_default();
//! let mapping = map_network(&MlBench::VggD.spec(), &hw, CompileOptions::default())?;
//! assert!(mapping.banks_per_copy > 1); // VGG-D needs the inter-bank pipeline
//! # Ok::<(), prime_compiler::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod mapping;
mod placement;
mod target;

pub use error::CompileError;
pub use mapping::{
    enumerate_candidates, map_network, pipeline_credits, select_strategy, CompileOptions,
    LayerMapping, LayoutFootprint, MappingStrategy, NetworkMapping, NnScale, Objective,
    PipelineStage,
};
pub use placement::ImagePlacement;
pub use target::HwTarget;
