//! Hardware target description for the mapping compiler.

use serde::{Deserialize, Serialize};

use prime_mem::MemGeometry;

use crate::error::CompileError;

/// The FF-subarray resources the compiler maps onto.
///
/// `mat_rows` and `mat_cols` are *composed-weight* dimensions: a physical
/// 256x256 crossbar pair holds 256 input rows by 128 composed 8-bit
/// weights (two adjacent 4-bit cells per weight, sign via the
/// positive/negative pair).
///
/// # Examples
///
/// ```
/// use prime_compiler::HwTarget;
/// use prime_mem::MemGeometry;
///
/// let hw = HwTarget::from_geometry(&MemGeometry::prime_default())?;
/// assert_eq!(hw.mats_per_bank(), 128);
/// assert_eq!(hw.total_mats(), 8192);
/// # Ok::<(), prime_compiler::CompileError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HwTarget {
    /// Input rows per mat (wordlines).
    pub mat_rows: usize,
    /// Composed weight columns per mat.
    pub mat_cols: usize,
    /// Mats per FF subarray.
    pub mats_per_ff_subarray: usize,
    /// FF subarrays per bank.
    pub ff_subarrays_per_bank: usize,
    /// Banks in the memory (PRIME's NPU count).
    pub banks: usize,
}

impl HwTarget {
    /// Derives the target from a memory geometry.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::InvalidTarget`] for degenerate geometries.
    pub fn from_geometry(geometry: &MemGeometry) -> Result<Self, CompileError> {
        let target = HwTarget {
            mat_rows: geometry.mat_rows,
            mat_cols: geometry.mat_cols / 2,
            mats_per_ff_subarray: geometry.mats_per_subarray,
            ff_subarrays_per_bank: geometry.ff_subarrays_per_bank,
            banks: geometry.total_banks(),
        };
        target.validate()?;
        Ok(target)
    }

    /// The paper's default target (derived from the 16 GB geometry).
    pub fn prime_default() -> Self {
        // Falls back to the literal paper resources if the geometry-derived
        // target is ever degenerate, keeping this constructor infallible
        // without a panic path.
        HwTarget::from_geometry(&MemGeometry::prime_default()).unwrap_or(HwTarget {
            mat_rows: 256,
            mat_cols: 128,
            mats_per_ff_subarray: 64,
            ff_subarrays_per_bank: 2,
            banks: 64,
        })
    }

    fn validate(&self) -> Result<(), CompileError> {
        if self.mat_rows == 0 || self.mat_cols == 0 {
            return Err(CompileError::InvalidTarget { reason: "mat dimensions must be non-zero" });
        }
        if self.mats_per_ff_subarray == 0 || self.ff_subarrays_per_bank == 0 || self.banks == 0 {
            return Err(CompileError::InvalidTarget { reason: "FF resources must be non-zero" });
        }
        Ok(())
    }

    /// FF mats available per bank.
    pub fn mats_per_bank(&self) -> usize {
        self.mats_per_ff_subarray * self.ff_subarrays_per_bank
    }

    /// FF mats available across the whole memory.
    pub fn total_mats(&self) -> usize {
        self.mats_per_bank() * self.banks
    }

    /// Composed synaptic weights per mat.
    pub fn synapses_per_mat(&self) -> u64 {
        (self.mat_rows * self.mat_cols) as u64
    }
}

impl Default for HwTarget {
    fn default() -> Self {
        HwTarget::prime_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_target_matches_paper_resources() {
        let hw = HwTarget::prime_default();
        assert_eq!(hw.mat_rows, 256);
        assert_eq!(hw.mat_cols, 128);
        assert_eq!(hw.banks, 64);
        assert_eq!(hw.mats_per_bank(), 128);
        // Full-memory synapse capacity ~2.7e8 (paper §IV-B1).
        let total = hw.total_mats() as u64 * hw.synapses_per_mat();
        assert!((total as f64 / 2.7e8 - 1.0).abs() < 0.01);
    }

    #[test]
    fn degenerate_targets_are_rejected() {
        let mut hw = HwTarget::prime_default();
        hw.banks = 0;
        assert!(hw.validate().is_err());
    }
}
