//! Error type for the mapping compiler.

use std::fmt;

/// Errors raised while mapping an NN onto PRIME's FF subarrays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The network needs more FF mats than the whole memory provides.
    CapacityExceeded {
        /// Mats required.
        required: usize,
        /// Mats available across all banks.
        available: usize,
    },
    /// A single layer is wider than the hardware can merge (never happens
    /// with realistic parameters; guards arithmetic overflow).
    LayerTooLarge {
        /// The layer's description.
        layer: String,
    },
    /// The hardware target is degenerate (zero mats or banks).
    InvalidTarget {
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::CapacityExceeded { required, available } => {
                write!(f, "network needs {required} FF mats but only {available} exist")
            }
            CompileError::LayerTooLarge { layer } => {
                write!(f, "layer {layer} exceeds hardware merge limits")
            }
            CompileError::InvalidTarget { reason } => write!(f, "invalid hardware target: {reason}"),
        }
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CompileError::CapacityExceeded { required: 100, available: 64 };
        assert_eq!(e.to_string(), "network needs 100 FF mats but only 64 exist");
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<CompileError>();
    }
}
