//! Spiking neural networks on PRIME — the paper's §II-B future work:
//! a trained ReLU network is converted to a rate-coded SNN (weights
//! unchanged, data-based threshold balancing) and compared against the
//! ANN; spike sparsity is reported as crossbar synaptic events, since
//! binary spikes are exactly 1-bit wordline inputs.
//!
//! Run with: `cargo run --release --example spiking`

use prime::nn::{
    evaluate, train_sgd, Activation, DigitGenerator, FullyConnected, Layer, Network, SnnConfig,
    SpikingNetwork, TrainConfig, IMAGE_PIXELS, NUM_CLASSES,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SmallRng::seed_from_u64(2023);
    let generator = DigitGenerator::default();
    let train_set = generator.dataset(1000, &mut rng);
    let test_set = generator.dataset(250, &mut rng);

    let mut ann = Network::new(vec![
        Layer::Fc(FullyConnected::new(IMAGE_PIXELS, 32, Activation::Relu)),
        Layer::Fc(FullyConnected::new(32, NUM_CLASSES, Activation::Identity)),
    ])?;
    ann.init_random(&mut rng);
    train_sgd(&mut ann, &train_set, TrainConfig::quick(), &mut rng)?;
    let ann_acc = evaluate(&ann, &test_set)?;
    println!("ANN test accuracy: {:.1}%", 100.0 * ann_acc);

    let calib: Vec<Vec<f32>> = train_set.iter().take(30).map(|s| s.pixels.clone()).collect();
    for (name, config) in [("fast (16 steps)", SnnConfig::fast()), ("accurate (64 steps)", SnnConfig::accurate())] {
        let snn = SpikingNetwork::from_network(&ann, config, &calib)?;
        let correct =
            test_set.iter().filter(|s| snn.classify(&s.pixels) == s.label).count();
        let events: u64 =
            test_set.iter().take(20).map(|s| snn.synaptic_events(&s.pixels)).sum::<u64>() / 20;
        let dense =
            (IMAGE_PIXELS * 32 + 32 * NUM_CLASSES) as u64 * snn.timesteps() as u64;
        println!(
            "SNN {name}: accuracy {:.1}%, ~{events} synaptic events/inference \
             ({:.0}% of a dense {}-step evaluation)",
            100.0 * correct as f64 / test_set.len() as f64,
            100.0 * events as f64 / dense as f64,
            snn.timesteps()
        );
    }
    println!("\nBinary spikes are 1-bit wordline inputs: each timestep is one crossbar");
    println!("evaluation, so spike sparsity converts directly into saved FF-mat energy.");
    Ok(())
}
