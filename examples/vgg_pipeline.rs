//! Large-scale mapping: VGG-D (16 weight layers, ~1.4x10^8 synapses)
//! across the memory's banks with inter-bank pipelining, and the
//! performance comparison against the CPU and pNPU baselines.
//!
//! Run with: `cargo run --release --example vgg_pipeline`

use prime::compiler::{map_network, CompileOptions, HwTarget, NnScale};
use prime::nn::MlBench;
use prime::sim::{CpuMachine, Machine, NpuMachine, PrimeMachine, EVAL_BATCH};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = MlBench::VggD.spec();
    println!(
        "VGG-D: {} layers, {} synapses, {} MACs per inference",
        spec.layers().len(),
        spec.synapses(),
        spec.mac_ops()
    );

    let hw = HwTarget::prime_default();
    let mapping = map_network(&spec, &hw, CompileOptions::default())?;
    assert_eq!(mapping.scale, NnScale::Large);
    println!(
        "mapping: large-scale, {} base mats over {} banks, {} pipeline stages",
        mapping.base_mats,
        mapping.banks_per_copy,
        mapping.pipeline.len()
    );
    println!(
        "FF utilization: {:.1}% before replication, {:.1}% after",
        100.0 * mapping.utilization_before,
        100.0 * mapping.utilization_after
    );
    for stage in mapping.pipeline.iter().take(5) {
        let names: Vec<String> =
            stage.layers.iter().map(|&i| mapping.layers[i].layer.describe()).collect();
        println!("  stage @bank {}: {} mats, layers [{}]", stage.bank, stage.mats, names.join(", "));
    }
    println!("  ... ({} stages total)", mapping.pipeline.len());

    // Performance comparison at the evaluation batch (64 images).
    let cpu = CpuMachine::new().run(&spec, EVAL_BATCH);
    let co = NpuMachine::co_processor().run(&spec, EVAL_BATCH);
    let pim = NpuMachine::pim(64).run(&spec, EVAL_BATCH);
    let prime = PrimeMachine::new().run(&spec, EVAL_BATCH);
    println!("\nbatch of {EVAL_BATCH} images:");
    for r in [&cpu, &co, &pim, &prime] {
        println!(
            "  {:<14} {:>12.3} ms   speedup vs CPU {:>8.1}x   energy saving {:>8.1}x",
            r.machine,
            r.latency_ns / 1e6,
            r.speedup_vs(&cpu),
            r.energy_saving_vs(&cpu),
        );
    }
    println!(
        "\nPRIME's VGG-D speedup is its smallest across MlBench (paper §V-B: the\n\
         extremely large NN maps across {} banks and pays for inter-bank traffic).",
        mapping.banks_per_copy
    );
    Ok(())
}
