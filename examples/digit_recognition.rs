//! Handwritten-digit recognition end to end: offline training, the
//! Fig. 6-style precision check, and inference through the functional
//! FF-mat pipeline — software vs PRIME hardware accuracy side by side.
//!
//! Run with: `cargo run --release --example digit_recognition`

use prime::core::FfExecutor;
use prime::nn::{
    evaluate, evaluate_quantized, train_sgd, Activation, DigitGenerator, FullyConnected, Layer,
    Network, TrainConfig, IMAGE_PIXELS, NUM_CLASSES,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SmallRng::seed_from_u64(2016);
    let generator = DigitGenerator::default();
    let train_set = generator.dataset(1200, &mut rng);
    let test_set = generator.dataset(300, &mut rng);

    // Offline training (paper §IV-A: training happens off-line; the
    // resulting weights are programmed into FF mats).
    let mut net = Network::new(vec![
        Layer::Fc(FullyConnected::new(IMAGE_PIXELS, 48, Activation::Sigmoid)),
        Layer::Fc(FullyConnected::new(48, NUM_CLASSES, Activation::Identity)),
    ])?;
    net.init_random(&mut rng);
    let history = train_sgd(&mut net, &train_set, TrainConfig::quick(), &mut rng)?;
    for epoch in &history {
        println!(
            "epoch {}: loss {:.3}, train accuracy {:.1}%",
            epoch.epoch,
            epoch.mean_loss,
            100.0 * epoch.accuracy
        );
    }

    let float_acc = evaluate(&net, &test_set)?;
    println!("\nfloating-point test accuracy: {:.1}%", 100.0 * float_acc);

    // The paper's precision claim: 3-bit inputs and 3-bit weights suffice.
    for (ibits, wbits) in [(8, 8), (3, 3), (2, 2)] {
        let acc = evaluate_quantized(&net, &test_set, ibits, wbits)?;
        println!(
            "dynamic fixed point {ibits}-bit inputs / {wbits}-bit weights: {:.1}%",
            100.0 * acc
        );
    }

    // Run a slice of the test set through the functional FF-mat pipeline:
    // real crossbars, composing scheme, truncating SAs.
    let mut executor = FfExecutor::new();
    let hw_subset = &test_set[..60];
    let mut hw_correct = 0;
    let mut sw_correct = 0;
    for sample in hw_subset {
        let (hw_out, _) = executor.run(&net, &sample.pixels)?;
        if argmax(&hw_out) == sample.label {
            hw_correct += 1;
        }
        if argmax(&net.forward(&sample.pixels)?) == sample.label {
            sw_correct += 1;
        }
    }
    println!(
        "\nFF-mat hardware pipeline: {}/{} correct (software reference: {}/{})",
        hw_correct,
        hw_subset.len(),
        sw_correct,
        hw_subset.len()
    );
    println!(
        "hardware work: {} mat passes over {} programmed mats",
        executor.stats().mat_passes,
        executor.stats().mats_programmed
    );
    Ok(())
}

fn argmax(v: &[f32]) -> usize {
    let mut best = 0;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    best
}
