//! The morphable-memory walkthrough: an FF subarray serving as normal
//! memory, morphing into an accelerator (§III-A2 protocol), computing,
//! and morphing back with no data loss — plus the OS-side policy that
//! decides when to release FF mats under page-miss pressure (§IV-C).
//!
//! Run with: `cargo run --release --example morphing`

use prime::core::BankController;
use prime::mem::{
    BufAddr, Command, FfAddr, FfReservationMap, MatAddr, MatFunction, MorphDecision,
    MorphPolicy, PageMissTracker,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut ctrl = BankController::new(1, 2, 4096, 8192);
    let mat = MatAddr { subarray: 0, mat: 0 };

    // Phase 1: the FF subarray is ordinary memory holding user data.
    let user_data: Vec<bool> = (0..256).map(|i| (i * 7) % 3 == 0).collect();
    ctrl.mat_mut(mat).write_memory_row(17, &user_data)?;
    ctrl.mat_mut(mat).write_memory_row(400, &user_data)?;
    println!("memory mode: user data stored in FF subarray rows 17 and 400");

    // Phase 2: morph to computation (§III-A2): the controller migrates
    // the stored data to Mem-subarray space, then weights are programmed.
    ctrl.morph_to_compute(0)?;
    println!("morphing: data migrated, mats in weight-programming mode");
    ctrl.mat_mut(mat).program_composed(&[90, -60, 45, 120, -30, 15], 3, 2)?;
    ctrl.start_compute(0);
    println!("morphing: weights programmed, subarray in computation mode");

    // Phase 3: drive the Table I command flow for one computation.
    ctrl.buffer_mut().store(BufAddr(0), &[40, 8, 56])?;
    ctrl.execute(Command::Load {
        from: BufAddr(0),
        to: FfAddr { mat, offset: 0 },
        bytes: 24,
    })?;
    let out = ctrl.compute_mat(mat)?;
    ctrl.execute(Command::Store {
        from: FfAddr { mat, offset: 0 },
        to: BufAddr(64),
        bytes: 16,
    })?;
    println!("computation: inputs [40, 8, 56] -> outputs {out:?}");

    // Phase 4: wrap up — back to memory mode, data restored.
    ctrl.morph_to_memory(0)?;
    let restored = ctrl.mat(mat).read_memory_row(17, 256)?;
    assert_eq!(restored, user_data, "morphing must not lose data");
    println!("wrap-up: memory mode restored, user data intact");
    println!("\ncommand log ({} commands):", ctrl.log().len());
    for cmd in ctrl.log() {
        println!("  {cmd}");
    }

    // Phase 5: the OS runtime policy (§IV-C). Under memory pressure with
    // idle FF mats, reserved space is released back to normal memory.
    let policy = MorphPolicy::prime_default();
    let mut tracker = PageMissTracker::new(100);
    let mut reservations = FfReservationMap::new(128);
    reservations.reserve(8)?;
    for i in 0..100 {
        tracker.record(i % 10 == 0); // 10 % page miss rate
    }
    let decision = policy.decide(tracker.miss_rate(), reservations.utilization());
    println!(
        "\nOS: miss rate {:.0}%, FF utilization {:.1}% -> {:?}",
        100.0 * tracker.miss_rate(),
        100.0 * reservations.utilization(),
        decision
    );
    if decision == MorphDecision::ReleaseToMemory {
        let released = reservations.release_idle(8);
        println!(
            "OS: released {} idle FF mats back to normal memory ({} bytes reclaimed)",
            released.len(),
            reservations.released_bytes(16 * 1024)
        );
    }
    // Keep the controller's mats consistent with the walkthrough's story.
    assert_eq!(ctrl.mat(mat).function(), MatFunction::Memory);
    Ok(())
}
