//! Quickstart: one FF mat computing a signed matrix-vector product in
//! memory, then the full PRIME programming flow on an MLP.
//!
//! Run with: `cargo run --release --example quickstart`

use prime::core::{FfMat, NnParamFile, PrimeProgram};
use prime::mem::MatFunction;
use prime::nn::MlBench;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. A single full-function mat -----------------------------------
    // Program a 3x2 signed weight matrix (composed 8-bit weights across
    // adjacent 4-bit cells, sign via the positive/negative crossbar pair)
    // and evaluate composed 6-bit inputs.
    let mut mat = FfMat::new();
    mat.set_function(MatFunction::Program);
    #[rustfmt::skip]
    mat.program_composed(&[
        120, -80,
        -40,  60,
        200,  10,
    ], 3, 2)?;
    mat.set_function(MatFunction::Compute);
    let outputs = mat.compute(&[63, 10, 32])?;
    println!("FF mat outputs (composed, truncated): {outputs:?}");

    // --- 2. The Fig. 7 software/hardware interface ------------------------
    let spec = MlBench::MlpS.spec();
    let mut network = spec.to_network()?;
    let mut rng = SmallRng::seed_from_u64(42);
    network.init_random(&mut rng); // stands in for offline training
    let params = NnParamFile { spec, network };

    let mut program = PrimeProgram::new();
    let mapping = program.map_topology(&params)?; // Map_Topology(..)
    println!(
        "mapped {}: {:?} scale, {} mats, {} bank(s) per copy, {} copies across memory",
        mapping.name,
        mapping.scale,
        mapping.base_mats,
        mapping.banks_per_copy,
        mapping.copies_across_memory
    );
    program.program_weight(&params)?; // Program_Weight(..)
    let compiled = program.config_datapath()?; // Config_Datapath(..)
    println!(
        "datapath configuration: {} commands; per-inference data flow: {} commands",
        compiled.datapath_commands.len(),
        compiled.dataflow_commands.len()
    );
    println!("first commands: {}", compiled.datapath_commands[0]);
    println!("               {}", compiled.dataflow_commands[0]);

    let input = vec![0.5f32; 784];
    let output = program.run(&input)?; // Run(input_data)
    let class = PrimeProgram::post_proc(&output); // Post_Proc()
    println!("inference produced {} outputs; argmax class {class}", output.len());
    println!(
        "work: {} mat passes, {} merge adds, {} buffer words",
        program.stats().mat_passes,
        program.stats().merge_adds,
        program.stats().buffer_words
    );
    Ok(())
}
