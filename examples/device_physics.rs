//! Device-level exploration: MLC resistance programming, analog crossbar
//! evaluation under realistic programming noise, and the precision
//! composing scheme recovering high-precision results from 4-bit cells.
//!
//! Run with: `cargo run --release --example device_physics`

use prime::circuits::{part_sums, ComposingScheme};
use prime::device::{Crossbar, MlcSpec, NoiseModel, ReramCell};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- A single multi-level cell ---------------------------------------
    let spec = MlcSpec::new(4)?; // PRIME's computation cell: 16 levels
    let mut cell = ReramCell::new(spec);
    println!("cell: {} levels between {} and {} ohms", spec.levels(), spec.r_on_ohm(), spec.r_off_ohm());
    for level in [0u16, 5, 10, 15] {
        cell.program(level)?;
        println!("  level {level:>2} -> {:>8.1} ohm", cell.resistance_ohm());
    }

    // --- Analog evaluation with programming noise -------------------------
    let mut rng = SmallRng::seed_from_u64(99);
    let mut xbar = Crossbar::new(64, 16, spec);
    let weights: Vec<u16> = (0..64 * 16).map(|_| rng.gen_range(0..16)).collect();
    xbar.program_matrix(&weights)?;
    let input: Vec<u16> = (0..64).map(|_| rng.gen_range(0..8)).collect();
    let exact = xbar.dot(&input)?;
    xbar.apply_program_noise(&NoiseModel::crossbar_default(), &mut rng);
    let currents = xbar.dot_analog(&input, 3, &NoiseModel::ideal(), &mut rng)?;
    let input_sum: u64 = input.iter().map(|&a| u64::from(a)).sum();
    let mut worst_err = 0.0f64;
    for (col, &current) in currents.iter().enumerate() {
        let decoded = xbar.decode_current(current, input_sum, 3);
        let err = (decoded - exact[col] as i64).abs() as f64 / exact[col].max(1) as f64;
        worst_err = worst_err.max(err);
    }
    println!(
        "\n64x16 crossbar with 3% programming noise: worst relative bitline error {:.1}%",
        100.0 * worst_err
    );

    // --- The composing scheme (paper Eqs. 2-9) -----------------------------
    let scheme = ComposingScheme::prime_default();
    println!(
        "\ncomposing scheme: {}-bit inputs from {}-bit signals, {}-bit weights from {}-bit cells",
        scheme.input_bits(),
        scheme.input_half_bits(),
        scheme.weight_bits(),
        scheme.weight_half_bits()
    );
    let inputs: Vec<u16> = (0..256).map(|_| rng.gen_range(0..64)).collect();
    let composed_weights: Vec<i32> = (0..256).map(|_| rng.gen_range(-255..=255)).collect();
    let parts = part_sums(&scheme, &inputs, &composed_weights, 1)?;
    let exact_full: i64 = inputs
        .iter()
        .zip(&composed_weights)
        .map(|(&a, &w)| i64::from(a) * i64::from(w))
        .sum();
    println!("  full-precision result:      {exact_full}");
    println!("  reconstructed from parts:   {}", scheme.full_from_parts(parts[0]));
    println!("  exact 6-bit target:         {}", scheme.exact_target(exact_full));
    println!("  hardware-composed target:   {}", scheme.compose(parts[0]));
    println!("  guaranteed error bound:     +/-{}", scheme.max_composition_error());
    Ok(())
}
