//! In-situ training on FF mats — PRIME's stated future work (§IV-A),
//! implemented with gradient-proportional conductance pulses: the forward
//! pass runs on the device, the host computes gradients from read-back
//! codes, and weight updates are in-place cell writes whose endurance
//! cost is tracked.
//!
//! Run with: `cargo run --release --example insitu_training`

use prime::core::InSituMlp;
use prime::device::DEFAULT_ENDURANCE_WRITES;
use prime::nn::DigitGenerator;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SmallRng::seed_from_u64(61);
    let generator = DigitGenerator::default();
    let train_set = generator.dataset(300, &mut rng);
    let test_set = generator.dataset(100, &mut rng);

    // 14x14 pooled digits -> 16 hidden -> 10 classes, all weights living
    // in FF-mat conductances from the first update on.
    let mut mlp = InSituMlp::new(196, 16, 10, &mut rng)?;
    println!("training in situ (device forward, pulse updates)...");
    let history = mlp.train(&train_set, 15, 8, &mut rng)?;
    for epoch in history.iter().step_by(3) {
        println!(
            "  epoch {:>2}: train accuracy {:>5.1}%, {} cell writes",
            epoch.epoch,
            100.0 * epoch.accuracy,
            epoch.cell_writes
        );
    }

    let mut correct = 0;
    for sample in &test_set {
        if mlp.classify(&sample.pixels)? == sample.label {
            correct += 1;
        }
    }
    println!("\ntest accuracy (device inference): {}/{}", correct, test_set.len());

    // Endurance accounting: whole-training wear vs the 10^12 budget.
    let writes = mlp.total_writes();
    let weights = 196 * 16 + 16 * 10;
    let writes_per_cell = writes as f64 / weights as f64;
    println!(
        "endurance: {writes} cell writes total (~{writes_per_cell:.0} per weight); \
         {:.1e} such trainings fit in the 10^12 budget",
        DEFAULT_ENDURANCE_WRITES as f64 / writes_per_cell
    );
    Ok(())
}
